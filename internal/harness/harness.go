// Package harness drives the paper's full experiment matrix: every
// benchmark is built in compile-each and compile-all modes, linked with the
// standard linker and with OM at each level, run in the timing simulator,
// and measured statically and dynamically. The figure generators then
// reproduce the rows of Figures 3-7 and the GAT-size observation of §5.1.
//
// The matrix is embarrassingly parallel — each benchmark's user sources are
// compiled once per build mode, then every (build, link) cell fans out as
// an independent link+simulate job — so the runner schedules cells across a
// bounded worker pool (Runner.Parallelism) and merges the measurements
// deterministically: results are identical to a serial run, only faster.
// An optional content-addressed build cache (Runner.Cache) lets repeated
// runs skip compilation of unchanged sources entirely.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildcache"
	"repro/internal/dataflow"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tcc"
	"repro/internal/verify"
)

// BuildMode selects how the benchmark's user sources are compiled.
type BuildMode int

const (
	// CompileEach compiles every source file separately with -O2-style
	// intraprocedural optimization.
	CompileEach BuildMode = iota
	// CompileAll compiles all user sources as one unit with interprocedural
	// optimization (the libraries stay precompiled, as in the paper).
	CompileAll
)

// String names the compilation mode.
func (m BuildMode) String() string {
	if m == CompileAll {
		return "compile-all"
	}
	return "compile-each"
}

// LinkMode selects the link-time treatment.
type LinkMode int

const (
	// LinkStandard is the traditional linker with no optimization.
	LinkStandard LinkMode = iota
	// OMNone runs OM's lift/regenerate pipeline without optimizing.
	OMNone
	// OMSimple is the replace-only level.
	OMSimple
	// OMFull is the full level.
	OMFull
	// OMFullSched is OM-full plus rescheduling and loop alignment.
	OMFullSched
)

var linkModeNames = map[LinkMode]string{
	LinkStandard: "ld", OMNone: "om-none", OMSimple: "om-simple",
	OMFull: "om-full", OMFullSched: "om-full+sched",
}

// String names the link treatment.
func (m LinkMode) String() string { return linkModeNames[m] }

// Variant is one cell of the experiment matrix.
type Variant struct {
	Build BuildMode
	Link  LinkMode
}

// Measurement holds everything recorded for one variant of one benchmark.
type Measurement struct {
	Static    *om.Stats // nil for LinkStandard
	Run       sim.Stats
	Exit      int64
	Output    []int64
	BuildTime time.Duration // link step only (ld or OM)
	TextBytes int
	GATBytes  uint64
	// Journal is the cell's decision journal (Runner.Trace runs through an
	// OM link mode only; nil otherwise).
	Journal *obs.JournalDoc
	// Verify is the cell's om-verify/v1 verdict document (Runner.Verify
	// runs through an OM link mode only; nil otherwise). A cell whose image
	// fails validation never produces a Measurement — the run errors.
	Verify *verify.Doc
	// Lint is the cell's static om-lint/v1 report over the linked image
	// (Runner.Lint runs through an OM link mode only; nil otherwise). A
	// cell whose image carries an error finding never produces a
	// Measurement — the run errors.
	Lint *dataflow.Report
}

// Result aggregates one benchmark across the matrix.
type Result struct {
	Name string
	// CompileTime[mode] is the time to compile the user sources.
	CompileTime map[BuildMode]time.Duration
	M           map[Variant]*Measurement
}

// Logger receives the runner's progress output.
type Logger interface {
	Logf(format string, args ...any)
}

// LoggerFunc adapts a printf-style function to the Logger interface.
type LoggerFunc func(format string, args ...any)

// Logf calls f.
func (f LoggerFunc) Logf(format string, args ...any) { f(format, args...) }

// Runner executes the matrix.
type Runner struct {
	// SimConfig is the timing configuration for dynamic measurements.
	SimConfig sim.Config
	// Parallelism bounds the number of concurrently executing jobs
	// (compiles and link+simulate cells). <= 0 selects GOMAXPROCS.
	Parallelism int
	// Logger receives progress lines; nil discards them.
	Logger Logger
	// Cache, when non-nil, memoizes compiled objects by content hash so
	// repeated runs with unchanged sources skip compilation.
	Cache *buildcache.Cache
	// Metrics, when non-nil, receives phase timers (harness/compile,
	// harness/link, harness/sim), build-cache traffic counters, and the
	// worker-pool utilization gauge for the configured parallelism.
	Metrics *obs.Registry
	// Programs, when non-nil, keeps merged link.Programs resident by module
	// content hash, so matrix cells (and repeated runs inside one process)
	// that link the same modules skip re-decoding and re-merging. Entries
	// are shared read-only; nil merges fresh every time.
	Programs *buildcache.ProgramCache
	// Memo, when non-nil, is the per-procedure OM memo threaded into every
	// om.Run, letting warm relinks replay lifted procedures and finished
	// pass results instead of recomputing them.
	Memo *om.Memo
	// Trace collects a decision journal for every OM-linked matrix cell
	// (Measurement.Journal).
	Trace bool
	// Verify translation-validates every OM-linked cell's image against
	// its decision journal (forcing a journal internally even when Trace is
	// off) and fails the cell when a rewrite cannot be proven sound. The
	// verdict document lands in Measurement.Verify.
	Verify bool
	// Lint statically analyzes every OM-linked cell's image with the
	// whole-program dataflow checks and fails the cell on any error
	// finding. With Verify also on, the two engines are cross-checked
	// (verify.Doc.CrossCheckStatic) so a rewrite cannot be dynamically
	// sound and statically broken at once. The report lands in
	// Measurement.Lint.
	Lint bool
	// Span, when non-nil, receives one child span per pipeline stage the
	// runner executes (harness/compile, harness/link with the om phases
	// nested inside, harness/sim), annotated with the benchmark and cell so
	// a whole matrix run renders as one trace. Nil disables span recording
	// at zero cost.
	Span *obs.Span

	libOnce sync.Once
	lib     []*objfile.Object
	libErr  error
}

// RunnerOption configures a Runner built by New, mirroring the om package's
// functional-option style so harness construction and job construction read
// the same way (and a daemon can assemble both from one request).
type RunnerOption func(*Runner)

// WithSimConfig replaces the default timing configuration.
func WithSimConfig(cfg sim.Config) RunnerOption {
	return func(r *Runner) { r.SimConfig = cfg }
}

// WithParallelism bounds the number of concurrently executing jobs
// (compiles and link+simulate cells). n <= 0 selects GOMAXPROCS.
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) { r.Parallelism = n }
}

// WithCache memoizes compiled objects in the given content-addressed cache
// so repeated runs with unchanged sources skip compilation. A nil cache
// disables caching (the default).
func WithCache(c *buildcache.Cache) RunnerOption {
	return func(r *Runner) { r.Cache = c }
}

// WithProgramCache keeps merged programs resident across cells and runs,
// keyed by module content; nil disables residency (the default).
func WithProgramCache(pc *buildcache.ProgramCache) RunnerOption {
	return func(r *Runner) { r.Programs = pc }
}

// WithMemo threads a per-procedure OM memo into every link the runner
// performs, so warm relinks replay cached lift and pass results; nil
// disables memoization (the default).
func WithMemo(m *om.Memo) RunnerOption {
	return func(r *Runner) { r.Memo = m }
}

// WithLogger routes progress lines to l; nil discards them (the default).
func WithLogger(l Logger) RunnerOption {
	return func(r *Runner) { r.Logger = l }
}

// WithMetrics records phase timers, cache traffic, and pool utilization
// into the registry; nil disables recording (the default).
func WithMetrics(m *obs.Registry) RunnerOption {
	return func(r *Runner) { r.Metrics = m }
}

// WithTrace collects a decision journal for every OM-linked matrix cell
// (Measurement.Journal).
func WithTrace(on bool) RunnerOption {
	return func(r *Runner) { r.Trace = on }
}

// WithSpan nests per-stage child spans under sp (see Runner.Span); nil
// disables span recording (the default).
func WithSpan(sp *obs.Span) RunnerOption {
	return func(r *Runner) { r.Span = sp }
}

// WithVerify translation-validates every OM-linked cell's image against its
// decision journal, failing the cell on an unprovable rewrite (see
// Runner.Verify).
func WithVerify(on bool) RunnerOption {
	return func(r *Runner) { r.Verify = on }
}

// WithLint statically analyzes every OM-linked cell's image, failing the
// cell on any error finding (see Runner.Lint).
func WithLint(on bool) RunnerOption {
	return func(r *Runner) { r.Lint = on }
}

// New builds a runner with the default timing model, then applies the
// options in order.
func New(opts ...RunnerOption) (*Runner, error) {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 2_000_000_000
	r := &Runner{SimConfig: cfg}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// NewRunner builds a runner with the default timing model.
//
// Deprecated: use New, optionally with RunnerOptions. This shim survives
// one release for out-of-tree callers and then goes away.
func NewRunner() (*Runner, error) { return New() }

func (r *Runner) logf(format string, args ...any) {
	if r.Logger != nil {
		r.Logger.Logf(format, args...)
	}
}

func (r *Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// libObjects returns the precompiled standard library, compiling it at most
// once per runner (through the build cache when one is configured; the
// process-wide rtlib memoization otherwise).
func (r *Runner) libObjects() ([]*objfile.Object, error) {
	r.libOnce.Do(func() {
		if r.Cache != nil {
			r.lib, r.libErr = rtlib.ObjectsVia(r.Cache.Compile, tcc.DefaultOptions())
			return
		}
		r.lib, r.libErr = rtlib.StandardObjects()
	})
	return r.lib, r.libErr
}

// sem is a counting semaphore bounding concurrently executing jobs. Parent
// jobs never hold a slot while waiting on children, so the nested
// suite→benchmark→cell fan-out cannot deadlock. It also accumulates the
// total slot-held time, from which pool utilization is derived.
type sem struct {
	ch   chan struct{}
	busy atomic.Int64 // nanoseconds any slot was held
}

func (r *Runner) newSem() *sem { return &sem{ch: make(chan struct{}, r.workers())} }

// acquire claims a slot and returns the function releasing it (nil on
// cancellation). The release closure credits the held duration to the
// pool's busy time.
func (s *sem) acquire(ctx context.Context) (func(), error) {
	select {
	case s.ch <- struct{}{}:
		start := time.Now()
		return func() {
			s.busy.Add(int64(time.Since(start)))
			<-s.ch
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// recordPool publishes the pool's utilization over the measured wall time:
// busy-seconds divided by workers × wall-seconds, named by the -j setting
// so runs at different parallelism stay distinguishable.
func (r *Runner) recordPool(s *sem, wall time.Duration) {
	if r.Metrics == nil || wall <= 0 {
		return
	}
	w := r.workers()
	busy := s.busy.Load()
	r.Metrics.Counter("harness/pool-busy-ns").Add(uint64(busy))
	r.Metrics.SetGauge(fmt.Sprintf("harness/pool-utilization-j%d", w),
		float64(busy)/(float64(wall)*float64(w)))
}

// firstError returns the lowest-index non-nil error, making the reported
// failure deterministic regardless of which parallel job failed first.
// Cancellation errors only count when nothing failed for a real reason:
// when one job fails the pool cancels its siblings, and those secondary
// context errors must not mask the root cause.
func firstError(errs []error) error {
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return err
	}
	return canceled
}

// compile produces the user objects for the given mode, timing the step.
// With a cache configured, a hit costs a hash and a decode, no compile.
func (r *Runner) compile(b spec.Benchmark, mode BuildMode) ([]*objfile.Object, time.Duration, error) {
	sp := r.Span.Child("harness/compile")
	sp.SetAttr("bench", b.Name)
	sp.SetAttr("mode", mode.String())
	defer sp.End()
	start := time.Now()
	var objs []*objfile.Object
	if mode == CompileEach {
		for _, m := range b.Modules {
			obj, err := r.Cache.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
			if err != nil {
				return nil, 0, fmt.Errorf("%s: %w", b.Name, err)
			}
			objs = append(objs, obj)
		}
	} else {
		obj, err := r.Cache.Compile(b.Name+"_all", b.Modules, tcc.InterprocOptions())
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", b.Name, err)
		}
		objs = []*objfile.Object{obj}
	}
	dt := time.Since(start)
	r.Metrics.Timer("harness/compile").Observe(dt)
	return objs, dt, nil
}

// linkVariant produces the image (and OM stats and, when tracing,
// verifying, or linting, the decision journal, verdict document, and
// static findings report) for one link mode.
func (r *Runner) linkVariant(ctx context.Context, objs []*objfile.Object, mode LinkMode) (*objfile.Image, *om.Stats, *obs.JournalDoc, *verify.Doc, *dataflow.Report, time.Duration, error) {
	lib, err := r.libObjects()
	if err != nil {
		return nil, nil, nil, nil, nil, 0, err
	}
	all := append(append([]*objfile.Object(nil), objs...), lib...)
	sp := r.Span.Child("harness/link")
	sp.SetAttr("mode", mode.String())
	defer sp.End()
	start := time.Now()
	defer func() { r.Metrics.Timer("harness/link").Observe(time.Since(start)) }()
	switch mode {
	case LinkStandard:
		im, err := link.Link(all)
		return im, nil, nil, nil, nil, time.Since(start), err
	default:
		opts := []om.Option{om.WithMetrics(r.Metrics), om.WithSpan(sp)}
		if r.Memo != nil {
			opts = append(opts, om.WithMemo(r.Memo))
		}
		if r.Trace || r.Verify {
			opts = append(opts, om.WithTrace())
		}
		switch mode {
		case OMNone:
			opts = append(opts, om.WithLevel(om.LevelNone))
		case OMSimple:
			opts = append(opts, om.WithLevel(om.LevelSimple))
		case OMFull:
			opts = append(opts, om.WithLevel(om.LevelFull))
		case OMFullSched:
			opts = append(opts, om.WithLevel(om.LevelFull), om.WithSchedule(true))
		}
		p, _, err := r.Programs.GetOrMerge(all)
		if err != nil {
			return nil, nil, nil, nil, nil, 0, err
		}
		res, err := om.Run(ctx, p, opts...)
		if err != nil {
			return nil, nil, nil, nil, nil, 0, err
		}
		var vdoc *verify.Doc
		if r.Verify {
			vdoc, err = verify.ValidateImage(res.Image, res.Journal)
			if err == nil {
				err = vdoc.Err()
			}
			if err != nil {
				return nil, nil, nil, nil, nil, 0, fmt.Errorf("verify %v: %w", mode, err)
			}
		}
		var ldoc *dataflow.Report
		if r.Lint {
			ldoc, err = dataflow.AnalyzeImage(res.Image)
			if err != nil {
				return nil, nil, nil, nil, nil, 0, fmt.Errorf("lint %v: %w", mode, err)
			}
			for _, f := range ldoc.Findings {
				if f.Severity == dataflow.SevError {
					return nil, nil, nil, nil, nil, 0, fmt.Errorf("lint %v: %d error finding(s); first: %s",
						mode, ldoc.Errors(), f.String())
				}
			}
			if vdoc != nil {
				// Both engines ran over the same image: prove they agree.
				if err := vdoc.CrossCheckStatic(ldoc); err != nil {
					return nil, nil, nil, nil, nil, 0, fmt.Errorf("lint %v: %w", mode, err)
				}
			}
		}
		journal := res.Journal
		if !r.Trace {
			// The journal, if any, was forced for verification only.
			journal = nil
		}
		return res.Image, res.Stats, journal, vdoc, ldoc, time.Since(start), nil
	}
}

// AllVariants is the full matrix.
func AllVariants() []Variant {
	var vs []Variant
	for _, b := range []BuildMode{CompileEach, CompileAll} {
		for _, l := range []LinkMode{LinkStandard, OMNone, OMSimple, OMFull, OMFullSched} {
			vs = append(vs, Variant{b, l})
		}
	}
	return vs
}

// RunBenchmark measures one benchmark across the whole matrix, verifying
// that every variant produces identical program output. Cells run
// concurrently up to Runner.Parallelism.
func (r *Runner) RunBenchmark(ctx context.Context, b spec.Benchmark) (*Result, error) {
	s := r.newSem()
	start := time.Now()
	res, err := r.runBenchmark(ctx, s, b)
	r.recordPool(s, time.Since(start))
	return res, err
}

// measureCell links and simulates one matrix cell.
func (r *Runner) measureCell(ctx context.Context, b spec.Benchmark, v Variant, objs []*objfile.Object) (*Measurement, error) {
	im, st, journal, vdoc, ldoc, dt, err := r.linkVariant(ctx, objs, v.Link)
	if err != nil {
		return nil, fmt.Errorf("%s %v/%v: %w", b.Name, v.Build, v.Link, err)
	}
	simSpan := r.Span.Child("harness/sim")
	simSpan.SetAttr("bench", b.Name)
	simDone := obs.StartSpan(r.Metrics.Timer("harness/sim"))
	run, err := sim.RunContext(ctx, im, r.SimConfig)
	simDone()
	simSpan.End()
	if err != nil {
		return nil, fmt.Errorf("%s %v/%v: %w", b.Name, v.Build, v.Link, err)
	}
	r.logf("  %-10s %-12s %-13s cycles=%-11d insts=%-10d link=%v",
		b.Name, v.Build, v.Link, run.Stats.Cycles, run.Stats.Instructions, dt.Round(time.Millisecond))
	return &Measurement{
		Static:    st,
		Run:       run.Stats,
		Exit:      run.Exit,
		Output:    run.Output,
		BuildTime: dt,
		TextBytes: len(im.TextSegment().Data),
		GATBytes:  im.GATBytes(),
		Journal:   journal,
		Verify:    vdoc,
		Lint:      ldoc,
	}, nil
}

func (r *Runner) runBenchmark(ctx context.Context, s *sem, b spec.Benchmark) (*Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{
		Name:        b.Name,
		CompileTime: make(map[BuildMode]time.Duration),
		M:           make(map[Variant]*Measurement),
	}

	// Compile once per build mode; the two modes compile concurrently.
	modes := []BuildMode{CompileEach, CompileAll}
	objsByMode := make([][]*objfile.Object, len(modes))
	times := make([]time.Duration, len(modes))
	errs := make([]error, len(modes))
	var wg sync.WaitGroup
	for i, mode := range modes {
		wg.Add(1)
		go func(i int, mode BuildMode) {
			defer wg.Done()
			release, err := s.acquire(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			defer release()
			objsByMode[i], times[i], errs[i] = r.compile(b, mode)
			if errs[i] != nil {
				cancel()
			}
		}(i, mode)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	for i, mode := range modes {
		res.CompileTime[mode] = times[i]
	}

	// Fan every matrix cell out as an independent link+simulate job.
	vs := AllVariants()
	ms := make([]*Measurement, len(vs))
	cellErrs := make([]error, len(vs))
	for i, v := range vs {
		wg.Add(1)
		go func(i int, v Variant) {
			defer wg.Done()
			release, err := s.acquire(ctx)
			if err != nil {
				cellErrs[i] = err
				return
			}
			defer release()
			ms[i], cellErrs[i] = r.measureCell(ctx, b, v, objsByMode[v.Build])
			if cellErrs[i] != nil {
				cancel()
			}
		}(i, v)
	}
	wg.Wait()
	if err := firstError(cellErrs); err != nil {
		return nil, err
	}

	// Deterministic merge and output verification, in matrix order, against
	// the standard-link cell.
	refOutput := fmt.Sprint(ms[0].Exit, ms[0].Output)
	for i, v := range vs {
		if out := fmt.Sprint(ms[i].Exit, ms[i].Output); out != refOutput {
			return nil, fmt.Errorf("%s %v/%v: output diverged: %s vs %s",
				b.Name, v.Build, v.Link, out, refOutput)
		}
		res.M[v] = ms[i]
	}
	return res, nil
}

// RunSuite measures every benchmark (or the named subset), scheduling all
// benchmarks' matrix cells across one shared worker pool.
func (r *Runner) RunSuite(ctx context.Context, names []string) ([]*Result, error) {
	benches, err := selectBenchmarks(names)
	if err != nil {
		return nil, err
	}
	// Precompile the standard library before fanning out so a library
	// compile error surfaces once, deterministically.
	if _, err := r.libObjects(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s := r.newSem()
	start := time.Now()
	var cacheBefore buildcache.Stats
	if r.Cache != nil {
		cacheBefore = r.Cache.Stats()
	}
	results := make([]*Result, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b spec.Benchmark) {
			defer wg.Done()
			r.logf("%s:", b.Name)
			results[i], errs[i] = r.runBenchmark(ctx, s, b)
			if errs[i] != nil {
				cancel()
			}
		}(i, b)
	}
	wg.Wait()
	r.recordPool(s, time.Since(start))
	if r.Metrics != nil && r.Cache != nil {
		after := r.Cache.Stats()
		r.Metrics.Counter("buildcache/hits").Add(after.Hits - cacheBefore.Hits)
		r.Metrics.Counter("buildcache/disk-hits").Add(after.DiskHits - cacheBefore.DiskHits)
		r.Metrics.Counter("buildcache/compiles").Add(after.Misses - cacheBefore.Misses)
	}
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// selectBenchmarks resolves a name list (empty means the full suite).
func selectBenchmarks(names []string) ([]spec.Benchmark, error) {
	benches := spec.All()
	if len(names) > 0 {
		var sel []spec.Benchmark
		for _, n := range names {
			b, ok := spec.ByName(n)
			if !ok {
				return nil, fmt.Errorf("harness: unknown benchmark %q", n)
			}
			sel = append(sel, b)
		}
		benches = sel
	}
	return benches, nil
}

// Improvement returns the percent cycle improvement of the optimized link
// over the standard link for the same build mode.
func (res *Result) Improvement(build BuildMode, lk LinkMode) float64 {
	base := res.M[Variant{build, LinkStandard}].Run.Cycles
	opt := res.M[Variant{build, lk}].Run.Cycles
	if base == 0 {
		return 0
	}
	return 100 * (float64(base) - float64(opt)) / float64(base)
}
