package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/spec"
)

func runOne(t *testing.T, name string) *Result {
	t.Helper()
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b, ok := spec.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %s", name)
	}
	res, err := r.RunBenchmark(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunBenchmarkMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix run in -short mode")
	}
	res := runOne(t, "spice")
	if len(res.M) != len(AllVariants()) {
		t.Fatalf("measured %d variants, want %d", len(res.M), len(AllVariants()))
	}
	for _, v := range AllVariants() {
		m := res.M[v]
		if m == nil {
			t.Fatalf("missing variant %v", v)
		}
		if m.Run.Cycles == 0 || m.Run.Instructions == 0 {
			t.Errorf("%v: empty dynamic stats", v)
		}
		if v.Link == LinkStandard && m.Static != nil {
			t.Errorf("%v: standard link should have no OM stats", v)
		}
		if v.Link != LinkStandard && m.Static == nil {
			t.Errorf("%v: OM variant missing stats", v)
		}
	}
	// OM-full must execute fewer instructions than the standard link.
	base := res.M[Variant{CompileEach, LinkStandard}].Run.Instructions
	full := res.M[Variant{CompileEach, OMFull}].Run.Instructions
	if full >= base {
		t.Errorf("om-full executed %d instructions >= baseline %d", full, base)
	}
	// Improvement accessor is consistent with raw cycles.
	imp := res.Improvement(CompileEach, OMFull)
	if imp < -20 || imp > 50 {
		t.Errorf("implausible improvement %.2f%%", imp)
	}

	// Figure renderers accept the result and mention the benchmark.
	results := []*Result{res}
	for i, body := range []string{
		Figure3(results), Figure4(results), Figure5(results),
		Figure6(results), Figure7(results), GATTable(results), CodeSizeTable(results),
	} {
		if !strings.Contains(body, "spice") {
			t.Errorf("figure %d does not mention the benchmark:\n%s", i, body)
		}
	}
}

func TestRunSuiteUnknownBenchmark(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunSuite(context.Background(), []string{"nosuch"}); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestMeanAndMedian(t *testing.T) {
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if m := mean(nil); m != 0 {
		t.Errorf("mean(nil) = %v", m)
	}
	if m := median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix in -short mode")
	}
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.RunAblations(context.Background(), []string{"spice"})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 9 // full + 8 single-component ablations
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	var full, noAddr, noCall float64
	var fullDeleted, noPrologueDeleted int
	for _, row := range rows {
		switch row.Ablation.Name() {
		case "full":
			full = row.Improvement
			fullDeleted = row.Deleted
		case "-address-opt":
			noAddr = row.Improvement
		case "-call-opt":
			noCall = row.Improvement
		case "-prologue-delete":
			noPrologueDeleted = row.Deleted
		}
	}
	// Disabling components must not help more than a hair (layout noise),
	// and disabling the address optimization must hurt measurably.
	if noAddr >= full {
		t.Errorf("disabling address opt did not hurt: %.2f%% vs full %.2f%%", noAddr, full)
	}
	if noCall > full+1 {
		t.Errorf("disabling call opt helped?! %.2f%% vs full %.2f%%", noCall, full)
	}
	if noPrologueDeleted >= fullDeleted {
		t.Errorf("keeping prologues should delete fewer instructions: %d vs %d",
			noPrologueDeleted, fullDeleted)
	}
	table := AblationTable(rows)
	if !strings.Contains(table, "-address-opt") || !strings.Contains(table, "full") {
		t.Errorf("table missing rows:\n%s", table)
	}
}
