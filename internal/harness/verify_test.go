package harness

import (
	"context"
	"testing"

	"repro/internal/spec"
)

// TestRunnerWithVerify: a verifying runner translation-validates every
// OM-linked cell and attaches the verdict document to the measurement;
// standard-link cells carry none.
func TestRunnerWithVerify(t *testing.T) {
	r, err := New(WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := spec.ByName("compress")
	if !ok {
		t.Fatal("no benchmark compress")
	}
	res, err := r.RunBenchmark(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range res.M {
		if v.Link == LinkStandard {
			if m.Verify != nil {
				t.Errorf("%v: standard link carries verdicts", v)
			}
			continue
		}
		if m.Verify == nil {
			t.Errorf("%v: OM cell has no verdict document", v)
			continue
		}
		if m.Verify.Checked == 0 || m.Verify.Failed != 0 {
			t.Errorf("%v: verdicts checked=%d failed=%d", v, m.Verify.Checked, m.Verify.Failed)
		}
		if m.Journal != nil {
			t.Errorf("%v: journal leaked without Trace", v)
		}
	}
}
