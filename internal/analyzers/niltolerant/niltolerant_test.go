package niltolerant

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFile(fset, file)
}

func TestViolations(t *testing.T) {
	findings := check(t, `package p

type C struct{ n int }

// Bad dereferences without a guard.
func (c *C) Bad() int { return c.n }

// BadCall forwards the receiver without a guard; the callee may not
// tolerate nil either, so forwarding counts as use.
func (c *C) BadCall() int { return c.Bad() }

// Good guards before use.
func (c *C) Good() int {
	if c == nil {
		return 0
	}
	return c.n
}

// GoodFlipped guards with the operands reversed.
func (c *C) GoodFlipped() int {
	if nil != c {
		return c.n
	}
	return 0
}

// Unused never touches the receiver.
func (c *C) Unused() int { return 0 }

// Unnamed cannot dereference.
func (*C) Unnamed() int { return 1 }

type V struct{ n int }

// Value receivers cannot be nil.
func (v V) Value() int { return v.n }

// Exempt opts out.
// niltolerant: constructed internally, never nil
func (c *C) Exempt() int { return c.n }
`)
	var got []string
	for _, f := range findings {
		got = append(got, f.Method)
	}
	want := []string{"Bad", "BadCall"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("flagged %v, want %v", got, want)
	}
	if s := findings[0].String(); !strings.Contains(s, "(*C).Bad") || !strings.Contains(s, "src.go:6") {
		t.Fatalf("diagnostic form: %s", s)
	}
}

func TestGenericReceiver(t *testing.T) {
	findings := check(t, `package p

type Box[T any] struct{ v T }

func (b *Box[T]) Get() T { return b.v }
`)
	if len(findings) != 1 || findings[0].Recv != "*Box" {
		t.Fatalf("findings: %v", findings)
	}
}

// TestObsClean pins the convention where it is load-bearing: the obs
// package itself must be clean under the checker.
func TestObsClean(t *testing.T) {
	findings, err := CheckDir("../../obs")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
