// Package niltolerant checks the repository's nil-tolerant observability
// convention: a pointer-receiver method on a checked package's types must
// either guard the nil receiver — compare it against nil before touching it
// — or never use the receiver at all. The convention (documented in package
// obs) is what lets instrumented code thread an optional registry, span, or
// counter through hot paths without branching at every call site; a single
// unguarded method turns every such call site into a latent panic.
//
// The checker is deliberately syntactic, built on the standard library's
// go/parser and go/ast alone so it runs in the offline build container. It
// mirrors the go/analysis reporting shape (one diagnostic per position) so
// it can be repackaged as a `go vet -vettool` pass when golang.org/x/tools
// is available; cmd/niltolerant is the standalone runner `make verify`
// invokes.
//
// The nil comparison is recognized anywhere in the method body, not just
// dominating the first use — control-flow precision would need go/types
// and SSA. In this codebase the guard idiom is an early `if x == nil`
// return, which the syntactic rule accepts; what it cannot prove is that
// the guard executes before the use, an acceptable gap for a convention
// lint. A method may opt out with a `// niltolerant: <reason>` line in its
// doc comment when a nil receiver is impossible by construction.
package niltolerant

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one convention violation.
type Finding struct {
	Pos    token.Position
	Recv   string // receiver type, e.g. "*Span"
	Method string
}

// String renders the finding in the file:line: message form vet prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: method (%s).%s uses its receiver without a nil guard",
		filepath.ToSlash(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Recv, f.Method)
}

// CheckDir parses every non-test .go file in dir (no recursion, matching
// `go vet` package granularity) and returns the violations in file order.
func CheckDir(dir string) ([]Finding, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []Finding
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, CheckFile(fset, file)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out, nil
}

// CheckFile checks one parsed file.
func CheckFile(fset *token.FileSet, file *ast.File) []Finding {
	var out []Finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 || fn.Body == nil {
			continue
		}
		field := fn.Recv.List[0]
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue // value receivers cannot be nil
		}
		if len(field.Names) == 0 || field.Names[0].Name == "_" {
			continue // an unnamed receiver cannot be dereferenced
		}
		if optedOut(fn) {
			continue
		}
		recv := field.Names[0].Name
		if usesReceiver(fn.Body, recv) && !guardsReceiver(fn.Body, recv) {
			out = append(out, Finding{
				Pos:    fset.Position(fn.Name.Pos()),
				Recv:   "*" + typeName(star.X),
				Method: fn.Name.Name,
			})
		}
	}
	return out
}

// optedOut reports whether the method's doc comment carries a
// `// niltolerant: <reason>` line.
func optedOut(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "niltolerant:") {
			return true
		}
	}
	return false
}

// usesReceiver reports whether body touches the receiver outside of nil
// comparisons. Shadowing of the receiver name is not modeled; the
// convention forbids it anyway (a shadowed receiver defeats the guard).
func usesReceiver(body *ast.BlockStmt, recv string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if isNilComparison(n, recv) {
			return false // the guard itself is not a use
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == recv {
			used = true
			return false
		}
		return true
	})
	return used
}

// guardsReceiver reports whether body contains a `recv == nil` or
// `recv != nil` comparison anywhere.
func guardsReceiver(body *ast.BlockStmt, recv string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if isNilComparison(n, recv) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isNilComparison reports whether n is `recv == nil` or `recv != nil` (in
// either operand order).
func isNilComparison(n ast.Node, recv string) bool {
	be, ok := n.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false
	}
	return (isIdent(be.X, recv) && isIdent(be.Y, "nil")) ||
		(isIdent(be.Y, recv) && isIdent(be.X, "nil"))
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// typeName renders the receiver's base type for diagnostics (Ident or
// generic IndexExpr/IndexListExpr base).
func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	default:
		return "?"
	}
}
