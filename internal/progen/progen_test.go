package progen

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

// TestGeneratedProgramsCompile checks that many random programs make it
// through the compiler without error.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		srcs := Generate(seed, DefaultConfig())
		for _, s := range srcs {
			if _, err := tcc.Compile(s.Name, []tcc.Source{s}, tcc.DefaultOptions()); err != nil {
				t.Fatalf("seed %d, module %s: %v\nsource:\n%s", seed, s.Name, err, s.Text)
			}
		}
		if _, err := tcc.Compile("all", srcs, tcc.InterprocOptions()); err != nil {
			t.Fatalf("seed %d, compile-all: %v", seed, err)
		}
	}
}

// TestSemanticPreservationProperty is the toolchain's central property: for
// random programs, the output must be identical under the standard linker
// and every OM level, in both compilation modes.
func TestSemanticPreservationProperty(t *testing.T) {
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	seeds := int64(25)
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= seeds; seed++ {
		srcs := Generate(seed, DefaultConfig())

		builds := map[string][]*objfile.Object{}
		var each []*objfile.Object
		compileOK := true
		for _, s := range srcs {
			obj, err := tcc.Compile(s.Name, []tcc.Source{s}, tcc.DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			each = append(each, obj)
		}
		builds["each"] = append(each, lib...)
		allObj, err := tcc.Compile("all", srcs, tcc.InterprocOptions())
		if err != nil {
			t.Fatalf("seed %d compile-all: %v", seed, err)
		}
		builds["all"] = append([]*objfile.Object{allObj}, lib...)
		if !compileOK {
			continue
		}

		var want string
		runIt := func(label string, im *objfile.Image) {
			res, err := sim.Run(im, sim.Config{MaxInstructions: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, label, err)
			}
			got := fmt.Sprint(res.Exit, res.Output)
			if want == "" {
				want = got
			} else if got != want {
				t.Errorf("seed %d %s: output mismatch\n got: %s\nwant: %s", seed, label, got, want)
			}
		}

		for mode, objs := range builds {
			im, err := link.Link(objs)
			if err != nil {
				t.Fatalf("seed %d link %s: %v", seed, mode, err)
			}
			runIt("ld/"+mode, im)
			for _, cfg := range []struct {
				Level    om.Level
				Schedule bool
			}{
				{Level: om.LevelNone},
				{Level: om.LevelSimple},
				{Level: om.LevelFull},
				{Level: om.LevelFull, Schedule: true},
			} {
				p, err := link.Merge(objs)
				if err != nil {
					t.Fatalf("seed %d merge %s: %v", seed, mode, err)
				}
				res, err := om.Run(context.Background(), p,
					om.WithLevel(cfg.Level), om.WithSchedule(cfg.Schedule))
				if err != nil {
					t.Fatalf("seed %d om %v %s: %v", seed, cfg.Level, mode, err)
				}
				runIt(fmt.Sprintf("%v/%s/sched=%v", cfg.Level, mode, cfg.Schedule), res.Image)
			}
		}
	}
}

// TestGeneratorDeterminism: the same seed must generate identical sources.
func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("module count differs")
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("module %d differs between runs", i)
		}
	}
}

// TestOptimisticProperty: every random program must behave identically when
// compiled optimistically (-G) at several thresholds, under both the
// standard linker and OM-full.
func TestOptimisticProperty(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(100); seed < 100+seeds; seed++ {
		srcs := Generate(seed, DefaultConfig())
		var want string
		for _, g := range []int64{0, 8, 64, 1024} {
			opts := tcc.DefaultOptions()
			opts.OptimisticGP = g
			var objs []*objfile.Object
			for _, s := range srcs {
				obj, err := tcc.Compile(s.Name, []tcc.Source{s}, opts)
				if err != nil {
					t.Fatalf("seed %d G=%d: %v", seed, g, err)
				}
				objs = append(objs, obj)
			}
			lib, err := rtlib.Objects(opts)
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, lib...)
			im, err := link.Link(objs)
			if err != nil {
				// The optimistic assumption may legitimately fail to link
				// at large thresholds; that is the scheme's documented
				// weakness, not a bug — but our generated programs are
				// small, so demand success.
				t.Fatalf("seed %d G=%d link: %v", seed, g, err)
			}
			res, err := sim.Run(im, sim.Config{MaxInstructions: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d G=%d run: %v", seed, g, err)
			}
			got := fmt.Sprint(res.Exit, res.Output)
			if want == "" {
				want = got
			} else if got != want {
				t.Errorf("seed %d G=%d: output %s, want %s", seed, g, got, want)
			}
			// And OM-full on the optimistic objects.
			omP, err := link.Merge(objs)
			if err != nil {
				t.Fatalf("seed %d G=%d merge: %v", seed, g, err)
			}
			omFull, err := om.Run(context.Background(), omP,
				om.WithLevel(om.LevelFull), om.WithSchedule(true))
			if err != nil {
				t.Fatalf("seed %d G=%d om: %v", seed, g, err)
			}
			omIm := omFull.Image
			omRes, err := sim.Run(omIm, sim.Config{MaxInstructions: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d G=%d om run: %v", seed, g, err)
			}
			if got := fmt.Sprint(omRes.Exit, omRes.Output); got != want {
				t.Errorf("seed %d G=%d om-full: output %s, want %s", seed, g, got, want)
			}
		}
	}
}

// TestSharedLibraryProperty: random programs behave identically when the
// math/util library modules are dynamically linked.
func TestSharedLibraryProperty(t *testing.T) {
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	seeds := int64(8)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(200); seed < 200+seeds; seed++ {
		srcs := Generate(seed, DefaultConfig())
		var objs []*objfile.Object
		for _, s := range srcs {
			obj, err := tcc.Compile(s.Name, []tcc.Source{s}, tcc.DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			objs = append(objs, obj)
		}
		objs = append(objs, lib...)

		build := func(shared bool, level om.Level) string {
			p, err := link.Merge(objs)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if shared {
				p.MarkShared("libmath", "libutil")
			}
			var im *objfile.Image
			if level < 0 {
				im, err = p.Layout()
			} else {
				var res *om.Result
				res, err = om.Run(context.Background(), p, om.WithLevel(level))
				if res != nil {
					im = res.Image
				}
			}
			if err != nil {
				t.Fatalf("seed %d shared=%v: %v", seed, shared, err)
			}
			res, err := sim.Run(im, sim.Config{MaxInstructions: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d shared=%v run: %v", seed, shared, err)
			}
			return fmt.Sprint(res.Exit, res.Output)
		}
		want := build(false, -1)
		for _, shared := range []bool{false, true} {
			for _, level := range []om.Level{om.LevelSimple, om.LevelFull} {
				if got := build(shared, level); got != want {
					t.Errorf("seed %d shared=%v level=%v: %s, want %s", seed, shared, level, got, want)
				}
			}
		}
	}
}
