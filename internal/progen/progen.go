// Package progen generates random — but deterministic and terminating —
// Tiny C programs for property-based testing of the whole toolchain. The
// key property the tests check: a program's output must be identical under
// the standard linker and under every OM level, in both compile-each and
// compile-all modes.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/tcc"
)

// Config bounds the generated program.
type Config struct {
	Modules     int // separately compiled modules
	FuncsPerMod int
	MaxExprDeep int
	MaxStmts    int
}

// DefaultConfig generates mid-sized programs.
func DefaultConfig() Config {
	return Config{Modules: 3, FuncsPerMod: 4, MaxExprDeep: 4, MaxStmts: 6}
}

type gen struct {
	r   *rand.Rand
	cfg Config

	// Global environment, shared by all modules.
	longGlobals  []string
	dblGlobals   []string
	arrays       []arrayInfo // power-of-two sized long arrays
	funcs        []funcInfo  // defined so far (callable: acyclic call graph)
	staticsByMod map[int][]funcInfo
	nextVar      int
}

type arrayInfo struct {
	name string
	size int64 // power of two
}

type funcInfo struct {
	name   string
	params int  // all long
	isDbl  bool // returns double
	mod    int
	static bool
}

// Generate produces the modules of one random program.
func Generate(seed int64, cfg Config) []tcc.Source {
	g := &gen{r: rand.New(rand.NewSource(seed)), cfg: cfg,
		staticsByMod: make(map[int][]funcInfo)}

	// Globals.
	nLong := 2 + g.r.Intn(6)
	for i := 0; i < nLong; i++ {
		g.longGlobals = append(g.longGlobals, fmt.Sprintf("gv%d", i))
	}
	nDbl := 1 + g.r.Intn(3)
	for i := 0; i < nDbl; i++ {
		g.dblGlobals = append(g.dblGlobals, fmt.Sprintf("gd%d", i))
	}
	nArr := 1 + g.r.Intn(3)
	for i := 0; i < nArr; i++ {
		g.arrays = append(g.arrays, arrayInfo{
			name: fmt.Sprintf("ga%d", i),
			size: 1 << (3 + g.r.Intn(4)), // 8..64
		})
	}

	var sources []tcc.Source
	for m := 0; m < cfg.Modules; m++ {
		var b strings.Builder
		g.emitGlobalDecls(&b, m)
		for f := 0; f < cfg.FuncsPerMod; f++ {
			g.emitFunc(&b, m, f)
		}
		if m == cfg.Modules-1 {
			g.emitMain(&b)
		}
		sources = append(sources, tcc.Source{
			Name: fmt.Sprintf("m%d", m),
			Text: b.String(),
		})
	}
	return sources
}

// emitGlobalDecls declares or externs the shared globals in module m.
// Module 0 defines them; later modules extern them.
func (g *gen) emitGlobalDecls(b *strings.Builder, m int) {
	if m == 0 {
		for i, name := range g.longGlobals {
			if i%2 == 0 {
				fmt.Fprintf(b, "long %s = %d;\n", name, g.r.Intn(100))
			} else {
				fmt.Fprintf(b, "long %s;\n", name)
			}
		}
		for _, name := range g.dblGlobals {
			fmt.Fprintf(b, "double %s = %d.5;\n", name, g.r.Intn(10))
		}
		for _, a := range g.arrays {
			fmt.Fprintf(b, "long %s[%d];\n", a.name, a.size)
		}
	} else {
		for _, name := range g.longGlobals {
			fmt.Fprintf(b, "extern long %s;\n", name)
		}
		for _, name := range g.dblGlobals {
			fmt.Fprintf(b, "extern double %s;\n", name)
		}
		for _, a := range g.arrays {
			fmt.Fprintf(b, "extern long %s[%d];\n", a.name, a.size)
		}
	}
	// Forward declarations for functions defined in earlier modules.
	for _, fn := range g.funcs {
		if fn.mod != m && !fn.static {
			ret := "long"
			if fn.isDbl {
				ret = "double"
			}
			fmt.Fprintf(b, "%s %s(%s);\n", ret, fn.name, paramList(fn.params))
		}
	}
	b.WriteString("\n")
}

func paramList(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("long p%d", i)
	}
	return strings.Join(parts, ", ")
}

// longExpr generates a side-effect-free long expression. Locals in scope are
// given by vars.
func (g *gen) longExpr(depth int, vars []string) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(2000)-1000)
		case 1:
			if len(vars) > 0 {
				return vars[g.r.Intn(len(vars))]
			}
			return fmt.Sprintf("%d", g.r.Intn(50))
		case 2:
			return g.longGlobals[g.r.Intn(len(g.longGlobals))]
		default:
			a := g.arrays[g.r.Intn(len(g.arrays))]
			return fmt.Sprintf("%s[%s & %d]", a.name, g.idxExpr(vars), a.size-1)
		}
	}
	x := g.longExpr(depth-1, vars)
	y := g.longExpr(depth-1, vars)
	switch g.r.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * %s)", x, y)
	case 3:
		return fmt.Sprintf("(%s & %s)", x, y)
	case 4:
		return fmt.Sprintf("(%s | %s)", x, y)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", x, y)
	case 6:
		return fmt.Sprintf("(%s >> %d)", x, 1+g.r.Intn(8))
	case 7:
		return fmt.Sprintf("(%s << %d)", x, 1+g.r.Intn(4))
	case 8:
		return fmt.Sprintf("(%s / %d)", x, 1+g.r.Intn(9))
	default:
		op := []string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", x, op, y)
	}
}

// idxExpr generates a cheap index expression.
func (g *gen) idxExpr(vars []string) string {
	if len(vars) > 0 && g.r.Intn(2) == 0 {
		return vars[g.r.Intn(len(vars))]
	}
	return fmt.Sprintf("%d", g.r.Intn(64))
}

// dblExpr generates a double expression.
func (g *gen) dblExpr(depth int, vars []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d.%d", g.r.Intn(20), g.r.Intn(100))
		case 1:
			return g.dblGlobals[g.r.Intn(len(g.dblGlobals))]
		default:
			if len(vars) > 0 {
				return vars[g.r.Intn(len(vars))]
			}
			return "1.25"
		}
	}
	x := g.dblExpr(depth-1, vars)
	y := g.dblExpr(depth-1, vars)
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * 0.5 + %s * 0.25)", x, y)
	default:
		return fmt.Sprintf("(%s / (%s * %s + 1.5))", x, y, y)
	}
}

// callExpr generates a call to an already-defined long function or a
// library helper, guaranteeing an acyclic call graph.
func (g *gen) callExpr(m int, vars []string) string {
	candidates := make([]funcInfo, 0, len(g.funcs))
	for _, fn := range g.funcs {
		if fn.isDbl {
			continue
		}
		if fn.static && fn.mod != m {
			continue
		}
		candidates = append(candidates, fn)
	}
	if len(candidates) == 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("lhash(%s)", g.longExpr(1, vars))
		case 1:
			return fmt.Sprintf("lmax(%s, %s)", g.longExpr(1, vars), g.longExpr(1, vars))
		default:
			return fmt.Sprintf("labs(%s)", g.longExpr(1, vars))
		}
	}
	fn := candidates[g.r.Intn(len(candidates))]
	args := make([]string, fn.params)
	for i := range args {
		args[i] = g.longExpr(1, vars)
	}
	return fmt.Sprintf("%s(%s)", fn.name, strings.Join(args, ", "))
}

// emitStmts writes a list of statements. vars are in-scope long locals;
// loopDepth bounds nesting.
func (g *gen) emitStmts(b *strings.Builder, m int, vars []string, indent string, n, loopDepth int) {
	for s := 0; s < n; s++ {
		switch g.r.Intn(7) {
		case 0: // assign global
			fmt.Fprintf(b, "%s%s = %s;\n", indent,
				g.longGlobals[g.r.Intn(len(g.longGlobals))], g.longExpr(2, vars))
		case 1: // assign array element
			a := g.arrays[g.r.Intn(len(g.arrays))]
			fmt.Fprintf(b, "%s%s[%s & %d] = %s;\n", indent,
				a.name, g.idxExpr(vars), a.size-1, g.longExpr(2, vars))
		case 2: // assign local
			if len(vars) > 0 {
				v := vars[g.r.Intn(len(vars))]
				fmt.Fprintf(b, "%s%s = %s;\n", indent, v, g.longExpr(2, vars))
				break
			}
			fallthrough
		case 3: // call for effect
			fmt.Fprintf(b, "%s%s;\n", indent, g.callExpr(m, vars))
		case 4: // if/else
			fmt.Fprintf(b, "%sif (%s) {\n", indent, g.longExpr(2, vars))
			g.emitStmts(b, m, vars, indent+"\t", 1+g.r.Intn(2), loopDepth)
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				g.emitStmts(b, m, vars, indent+"\t", 1+g.r.Intn(2), loopDepth)
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case 5: // bounded loop with a fresh induction variable
			if loopDepth <= 0 {
				fmt.Fprintf(b, "%s%s = %s + 1;\n", indent,
					g.longGlobals[g.r.Intn(len(g.longGlobals))],
					g.longGlobals[g.r.Intn(len(g.longGlobals))])
				break
			}
			iv := fmt.Sprintf("it%d", g.nextVar)
			g.nextVar++
			iters := 2 + g.r.Intn(8)
			fmt.Fprintf(b, "%s{\n%s\tlong %s;\n%s\tfor (%s = 0; %s < %d; %s = %s + 1) {\n",
				indent, indent, iv, indent, iv, iv, iters, iv, iv)
			g.emitStmts(b, m, vars, indent+"\t\t", 1+g.r.Intn(2), loopDepth-1)
			fmt.Fprintf(b, "%s\t}\n%s}\n", indent, indent)
		case 6: // double update
			fmt.Fprintf(b, "%s%s = %s;\n", indent,
				g.dblGlobals[g.r.Intn(len(g.dblGlobals))], g.dblExpr(2, nil))
		}
	}
}

// emitFunc writes one function definition and registers it.
func (g *gen) emitFunc(b *strings.Builder, m, f int) {
	static := g.r.Intn(4) == 0
	isDbl := g.r.Intn(5) == 0
	params := g.r.Intn(4)
	name := fmt.Sprintf("f%d_%d", m, f)
	fn := funcInfo{name: name, params: params, isDbl: isDbl, mod: m, static: static}

	ret := "long"
	if isDbl {
		ret = "double"
	}
	prefix := ""
	if static {
		prefix = "static "
	}
	fmt.Fprintf(b, "%s%s %s(%s) {\n", prefix, ret, name, paramList(params))

	vars := make([]string, 0, params+3)
	for i := 0; i < params; i++ {
		vars = append(vars, fmt.Sprintf("p%d", i))
	}
	nLocals := 1 + g.r.Intn(3)
	for i := 0; i < nLocals; i++ {
		v := fmt.Sprintf("l%d", i)
		fmt.Fprintf(b, "\tlong %s = %s;\n", v, g.longExpr(2, vars))
		vars = append(vars, v)
	}

	g.emitStmts(b, m, vars, "\t", 1+g.r.Intn(g.cfg.MaxStmts), 1)

	// A bounded loop with real work.
	iters := 2 + g.r.Intn(12)
	fmt.Fprintf(b, "\tlong acc = 0;\n\tlong i;\n\tfor (i = 0; i < %d; i = i + 1) {\n", iters)
	fmt.Fprintf(b, "\t\tacc = acc * 3 + (%s);\n", g.longExpr(2, append(vars, "i", "acc")))
	if g.r.Intn(2) == 0 {
		a := g.arrays[g.r.Intn(len(g.arrays))]
		fmt.Fprintf(b, "\t\t%s[i & %d] = acc;\n", a.name, a.size-1)
	}
	fmt.Fprintf(b, "\t}\n")

	if isDbl {
		fmt.Fprintf(b, "\tdouble dres = %s;\n\treturn dres + acc;\n}\n\n", g.dblExpr(2, nil))
	} else {
		fmt.Fprintf(b, "\treturn acc + (%s);\n}\n\n", g.longExpr(2, vars))
	}
	g.funcs = append(g.funcs, fn)
}

// emitMain writes the driver, which calls exported functions and prints
// checksums.
func (g *gen) emitMain(b *strings.Builder) {
	fmt.Fprintf(b, "long main() {\n\tlong total = 0;\n")
	for _, fn := range g.funcs {
		if fn.static && fn.mod != g.cfg.Modules-1 {
			continue
		}
		args := make([]string, fn.params)
		for i := range args {
			args[i] = fmt.Sprintf("%d", g.r.Intn(40))
		}
		call := fmt.Sprintf("%s(%s)", fn.name, strings.Join(args, ", "))
		if fn.isDbl {
			fmt.Fprintf(b, "\ttotal = total * 31 + print_fixed(%s);\n", call)
			fmt.Fprintf(b, "\tprint_fixed(%s * 0.5);\n", call)
		} else {
			fmt.Fprintf(b, "\ttotal = total * 31 + %s;\n", call)
		}
	}
	for _, name := range g.longGlobals {
		fmt.Fprintf(b, "\ttotal = total + %s;\n", name)
	}
	for _, a := range g.arrays {
		fmt.Fprintf(b, "\tprint_checksum(%s, %d);\n", a.name, a.size)
	}
	fmt.Fprintf(b, "\tprint(total);\n\treturn 0;\n}\n")
}
