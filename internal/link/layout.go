package link

import (
	"fmt"

	"repro/internal/axp"
	"repro/internal/objfile"
)

// GP addressing constants.
const (
	// GPOffset is the standard bias: GP = GAT start + GPOffset, so a 16-bit
	// signed displacement reaches the whole table.
	GPOffset = 32752
	// MaxGATSlots is the largest number of 8-byte slots one GAT can hold
	// while staying addressable from its GP.
	MaxGATSlots = (GPOffset + 32767) / 8
)

// SplitGPDisp splits a 32-bit displacement into the (high, low) pair of an
// ldah/lda sequence.
func SplitGPDisp(delta int64) (hi, lo int16, err error) {
	lo = int16(uint16(delta & 0xFFFF))
	h := (delta - int64(lo)) >> 16
	if h < -32768 || h > 32767 {
		return 0, 0, fmt.Errorf("link: GP displacement %#x out of 32-bit reach", delta)
	}
	return int16(h), lo, nil
}

// gatInfo is one global address table being assembled.
type gatInfo struct {
	slots []TargetKey
	start uint64
	gp    uint64
}

// Layout performs the standard link: GAT merging, address assignment, and
// relocation, producing an executable image.
func (p *Program) Layout() (*objfile.Image, error) {
	nmod := len(p.Objects)

	// --- Text bases, per region (static vs shared library).
	textBase := make([]uint64, nmod)
	tcur := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	for m, obj := range p.Objects {
		r := regionOf(p, m)
		tcur[r] = (tcur[r] + 15) &^ 15
		textBase[m] = tcur[r]
		tcur[r] += obj.Sections[objfile.SecText].Size
	}
	textEnd := [2]uint64{tcur[0], tcur[1]}

	// --- GAT assignment: merge module literal pools, starting a new GAT
	// when the current one would overflow its GP window.
	gplan, err := AssignGATs(p, nil)
	if err != nil {
		return nil, err
	}
	gats := make([]*gatInfo, len(gplan.Slots))
	for i, slots := range gplan.Slots {
		gats[i] = &gatInfo{slots: slots}
	}
	moduleGAT := gplan.ModuleGAT
	moduleSlot := gplan.ModuleSlot

	// --- Data layout per region: [GATs][sdata][sbss][data][commons][bss].
	// Small sections sit right after the GATs so GP-relative 16-bit
	// references (and OM's rewrites) can reach them; large data and commons
	// follow. Each region's data segment is one explicit blob.
	dcur := [2]uint64{objfile.DataBase, objfile.SharedDataBase}
	for gi, g := range gats {
		r := 0
		if gplan.GATShared[gi] {
			r = 1
		}
		g.start = dcur[r]
		g.gp = g.start + GPOffset
		dcur[r] += uint64(len(g.slots)) * 8
	}
	secBase := make([][objfile.NumSections]uint64, nmod)
	place := func(sec objfile.SectionKind) {
		for m, obj := range p.Objects {
			r := regionOf(p, m)
			dcur[r] = (dcur[r] + 7) &^ 7
			secBase[m][sec] = dcur[r]
			dcur[r] += obj.Sections[sec].Size
		}
	}
	place(objfile.SecSData)
	place(objfile.SecSBss)
	place(objfile.SecData)
	// Commons always belong to the static region (user program data).
	commonAddr := make(map[string]uint64)
	for _, c := range p.Commons {
		dcur[0] = (dcur[0] + c.Align - 1) &^ (c.Align - 1)
		commonAddr[c.Name] = dcur[0]
		dcur[0] += c.Size
	}
	place(objfile.SecBss)
	dataEnd := [2]uint64{(dcur[0] + 7) &^ 7, (dcur[1] + 7) &^ 7}
	// Refuse to materialize an implausible data segment: each input section
	// and common is individually bounded by objfile.Validate, but a module
	// set could still sum to an allocation no real program needs. The typed
	// error keeps corrupt-input handling classifiable end to end.
	const maxSegment = 1 << 31
	if dataEnd[0]-objfile.DataBase > maxSegment || dataEnd[1]-objfile.SharedDataBase > maxSegment {
		return nil, fmt.Errorf("link: %w: data segment exceeds %d bytes", objfile.ErrTooLarge, uint64(maxSegment))
	}

	// --- Address resolution helpers.
	addrOfDef := func(mod int, sym int32) (uint64, error) {
		s := &p.Objects[mod].Symbols[sym]
		switch s.Kind {
		case objfile.SymProc:
			return textBase[mod] + s.Value, nil
		case objfile.SymData:
			return secBase[mod][s.Section] + s.Value, nil
		}
		return 0, fmt.Errorf("link: address of non-definition %s", s.Name)
	}
	addrOfTarget := func(t Target, addend int64) (uint64, error) {
		if t.Kind == TCommon {
			a, ok := commonAddr[t.Name]
			if !ok {
				return 0, fmt.Errorf("link: unplaced common %s", t.Name)
			}
			return a + uint64(addend), nil
		}
		a, err := addrOfDef(t.Mod, t.Sym)
		if err != nil {
			return 0, err
		}
		return a + uint64(addend), nil
	}

	// --- Build the data segment images (static and, if present, shared).
	dataBases := [2]uint64{objfile.DataBase, objfile.SharedDataBase}
	blobs := [2][]byte{
		make([]byte, dataEnd[0]-objfile.DataBase),
		make([]byte, dataEnd[1]-objfile.SharedDataBase),
	}
	putQuad := func(addr uint64, v uint64) {
		r := 0
		if addr >= objfile.SharedDataBase {
			r = 1
		}
		objfile.PutUint64(blobs[r], addr-dataBases[r], v)
	}
	keyAddr := func(k TargetKey) (uint64, error) {
		if k.Kind == TCommon {
			a, ok := commonAddr[k.Name]
			if !ok {
				return 0, fmt.Errorf("link: unplaced common %s", k.Name)
			}
			return a + uint64(k.Addend), nil
		}
		a, err := addrOfDef(k.Mod, k.Sym)
		if err != nil {
			return 0, err
		}
		return a + uint64(k.Addend), nil
	}
	for _, g := range gats {
		for i, k := range g.slots {
			a, err := keyAddr(k)
			if err != nil {
				return nil, err
			}
			putQuad(g.start+uint64(i*8), a)
		}
	}
	for m, obj := range p.Objects {
		r := regionOf(p, m)
		for _, sec := range []objfile.SectionKind{objfile.SecSData, objfile.SecData} {
			copy(blobs[r][secBase[m][sec]-dataBases[r]:], obj.Sections[sec].Data)
		}
		for _, rel := range obj.Relocs {
			if rel.Kind != objfile.RRefQuad || rel.Section == objfile.SecLita {
				continue
			}
			a, err := addrOfTarget(p.Resolve(m, rel.Symbol), rel.Addend)
			if err != nil {
				return nil, err
			}
			putQuad(secBase[m][rel.Section]+rel.Offset, a)
		}
	}

	// --- Build the text segment images and apply text relocations.
	textBases := [2]uint64{objfile.TextBase, objfile.SharedTextBase}
	texts := [2][]byte{
		make([]byte, textEnd[0]-objfile.TextBase),
		make([]byte, textEnd[1]-objfile.SharedTextBase),
	}
	unop := axp.MustEncode(axp.Unop())
	for r := 0; r < 2; r++ {
		for i := uint64(0); i+4 <= uint64(len(texts[r])); i += 4 {
			objfile.PutUint32(texts[r], i, unop)
		}
	}
	for m, obj := range p.Objects {
		r := regionOf(p, m)
		copy(texts[r][textBase[m]-textBases[r]:], obj.Sections[objfile.SecText].Data)
	}
	for m, obj := range p.Objects {
		g := gats[moduleGAT[m]]
		region := regionOf(p, m)
		text := texts[region]
		mbase := textBase[m] - textBases[region]
		for _, r := range obj.Relocs {
			switch r.Kind {
			case objfile.RLiteral:
				slotAddr := g.start + uint64(moduleSlot[m][r.Extra])*8
				disp := int64(slotAddr) - int64(g.gp)
				if disp < axp.MemDispMin || disp > axp.MemDispMax {
					return nil, fmt.Errorf("link: %s: GAT slot beyond GP reach", obj.Name)
				}
				patchMemDisp(text, mbase+r.Offset, int16(disp))
			case objfile.RGPDisp:
				anchor := textBase[m] + uint64(r.Addend)
				hi, lo, err := SplitGPDisp(int64(g.gp) - int64(anchor))
				if err != nil {
					return nil, fmt.Errorf("link: %s: %w", obj.Name, err)
				}
				patchMemDisp(text, mbase+r.Offset, hi)
				patchMemDisp(text, mbase+r.Extra, lo)
			case objfile.RGPRel16:
				// Optimistic compilation: the compiler assumed this datum
				// is GP-reachable; verify or refuse to link.
				target, err := addrOfTarget(p.Resolve(m, r.Symbol), r.Addend)
				if err != nil {
					return nil, err
				}
				disp := int64(target) - int64(g.gp)
				if disp < axp.MemDispMin || disp > axp.MemDispMax {
					sym := "?"
					if r.Symbol >= 0 {
						sym = p.Resolve(m, r.Symbol).Name
					}
					return nil, fmt.Errorf("link: %s: %s is beyond 16-bit GP reach (disp %d); too much small data — recompile with a lower -G threshold", obj.Name, sym, disp)
				}
				patchMemDisp(text, mbase+r.Offset, int16(disp))
			case objfile.RBrAddr:
				target, err := addrOfTarget(p.Resolve(m, r.Symbol), r.Addend)
				if err != nil {
					return nil, err
				}
				disp, ok := axp.BranchDispTo(textBase[m]+r.Offset, target)
				if !ok {
					return nil, fmt.Errorf("link: %s: branch at %#x cannot reach %#x",
						obj.Name, textBase[m]+r.Offset, target)
				}
				patchBranchDisp(text, mbase+r.Offset, disp)
			}
		}
	}

	// --- Entry point.
	entry, ok := p.FindProc(p.EntryName)
	if !ok {
		return nil, fmt.Errorf("link: entry symbol %s not found", p.EntryName)
	}
	entryAddr, err := addrOfDef(entry.Mod, entry.Sym)
	if err != nil {
		return nil, err
	}

	// --- Image symbols.
	im := &objfile.Image{
		Entry: entryAddr,
		Segments: []objfile.Segment{
			{Name: ".text", Addr: objfile.TextBase, Data: texts[0]},
			{Name: ".data", Addr: objfile.DataBase, Data: blobs[0]},
		},
	}
	if len(texts[1]) > 0 || len(blobs[1]) > 0 {
		im.Segments = append(im.Segments,
			objfile.Segment{Name: ".text.so", Addr: objfile.SharedTextBase, Data: texts[1]},
			objfile.Segment{Name: ".data.so", Addr: objfile.SharedDataBase, Data: blobs[1]},
		)
	}
	for m, obj := range p.Objects {
		for s := range obj.Symbols {
			sym := &obj.Symbols[s]
			switch sym.Kind {
			case objfile.SymProc:
				im.Symbols = append(im.Symbols, objfile.ImageSymbol{
					Name: sym.Name, Addr: textBase[m] + sym.Value,
					Size: sym.End - sym.Value, Kind: objfile.SymProc,
					GP: gats[moduleGAT[m]].gp,
				})
			case objfile.SymData:
				im.Symbols = append(im.Symbols, objfile.ImageSymbol{
					Name: sym.Name, Addr: secBase[m][sym.Section] + sym.Value,
					Size: sym.Size, Kind: objfile.SymData,
				})
			}
		}
	}
	for _, c := range p.Commons {
		im.Symbols = append(im.Symbols, objfile.ImageSymbol{
			Name: c.Name, Addr: commonAddr[c.Name], Size: c.Size, Kind: objfile.SymData,
		})
	}
	for _, g := range gats {
		im.GATs = append(im.GATs, objfile.GATRange{
			Start: g.start, End: g.start + uint64(len(g.slots))*8, GP: g.gp,
		})
	}
	im.SortSymbols()
	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	return im, nil
}

// Link merges and lays out in one step.
func Link(objects []*objfile.Object) (*objfile.Image, error) {
	p, err := Merge(objects)
	if err != nil {
		return nil, err
	}
	return p.Layout()
}

// regionOf returns 0 for static modules, 1 for shared-library modules.
func regionOf(p *Program, m int) int {
	if p.IsShared(m) {
		return 1
	}
	return 0
}

// patchMemDisp overwrites the 16-bit displacement field of the memory-format
// instruction at byte offset off.
func patchMemDisp(text []byte, off uint64, disp int16) {
	w := objfile.Uint32At(text, off)
	w = (w &^ 0xFFFF) | uint32(uint16(disp))
	objfile.PutUint32(text, off, w)
}

// patchBranchDisp overwrites the 21-bit displacement field of the branch at
// byte offset off.
func patchBranchDisp(text []byte, off uint64, disp int32) {
	w := objfile.Uint32At(text, off)
	w = (w &^ 0x1FFFFF) | (uint32(disp) & 0x1FFFFF)
	objfile.PutUint32(text, off, w)
}
