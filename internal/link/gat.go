package link

import (
	"fmt"

	"repro/internal/objfile"
)

// GATPlan is the result of merging module literal pools into global address
// tables: which GAT each module uses, and how each module-local slot maps to
// a slot of its GAT.
type GATPlan struct {
	// Slots[g] lists GAT g's deduplicated targets in slot order.
	Slots [][]TargetKey
	// ModuleGAT[m] is the GAT index serving module m.
	ModuleGAT []int
	// ModuleSlot[m][s] maps module m's local slot s to a slot of its GAT,
	// or -1 when the slot was dropped by a keep filter.
	ModuleSlot [][]int
	// GATShared[g] marks tables belonging to shared-library modules; they
	// are laid out in the shared data region.
	GATShared []bool
}

// moduleKeysResult caches one computation of ModuleKeys on its Program.
type moduleKeysResult struct {
	keys [][]TargetKey
	err  error
}

// ModuleKeys extracts each module's literal-pool targets in slot order. The
// result depends only on the merged program, never on the optimization
// state, yet AssignGATs needs it on every layout round of the OM fixpoint —
// so it is computed once per Program and memoized. Callers must treat the
// returned slices as read-only.
func ModuleKeys(p *Program) ([][]TargetKey, error) {
	if r, ok := p.moduleKeys.Load().(*moduleKeysResult); ok {
		return r.keys, r.err
	}
	keys, err := computeModuleKeys(p)
	p.moduleKeys.Store(&moduleKeysResult{keys, err})
	return keys, err
}

// computeModuleKeys scans every module's .lita relocations.
func computeModuleKeys(p *Program) ([][]TargetKey, error) {
	keys := make([][]TargetKey, len(p.Objects))
	for m, obj := range p.Objects {
		ks := make([]TargetKey, obj.LitaSlots())
		seen := make([]bool, obj.LitaSlots())
		for _, r := range obj.Relocs {
			if r.Kind == objfile.RRefQuad && r.Section == objfile.SecLita {
				slot := int(r.Offset / 8)
				ks[slot] = Key(p.Resolve(m, r.Symbol), r.Addend)
				seen[slot] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				return nil, fmt.Errorf("link: module %s: GAT slot %d has no REFQUAD", obj.Name, i)
			}
		}
		keys[m] = ks
	}
	return keys, nil
}

// AssignGATs merges module literal pools into as few GATs as fit the GP
// window, deduplicating identical targets. keep, if non-nil, filters which
// module slots survive (GAT reduction): keep(m, slot) false drops the slot.
func AssignGATs(p *Program, keep func(m, slot int) bool) (*GATPlan, error) {
	moduleKeys, err := ModuleKeys(p)
	if err != nil {
		return nil, err
	}
	plan := &GATPlan{
		ModuleGAT:  make([]int, len(p.Objects)),
		ModuleSlot: make([][]int, len(p.Objects)),
	}
	type gat struct {
		slots  []TargetKey
		index  map[TargetKey]int
		shared bool
	}
	var gats []*gat
	g := &gat{index: make(map[TargetKey]int)}
	gats = append(gats, g)
	for m := range p.Objects {
		fresh := 0
		for s, k := range moduleKeys[m] {
			if keep != nil && !keep(m, s) {
				continue
			}
			if _, ok := g.index[k]; !ok {
				fresh++
			}
		}
		// A shared library never shares a GAT with the static part (or with
		// a different library region), and tables split on overflow.
		if (len(gats) > 0 && g.shared != p.IsShared(m) && len(g.slots) > 0) ||
			len(g.slots)+fresh > MaxGATSlots {
			if fresh > MaxGATSlots {
				return nil, fmt.Errorf("link: module %s needs %d GAT slots; max is %d",
					p.Objects[m].Name, fresh, MaxGATSlots)
			}
			g = &gat{index: make(map[TargetKey]int)}
			gats = append(gats, g)
		}
		g.shared = p.IsShared(m)
		plan.ModuleGAT[m] = len(gats) - 1
		plan.ModuleSlot[m] = make([]int, len(moduleKeys[m]))
		for s, k := range moduleKeys[m] {
			if keep != nil && !keep(m, s) {
				plan.ModuleSlot[m][s] = -1
				continue
			}
			gi, ok := g.index[k]
			if !ok {
				gi = len(g.slots)
				g.index[k] = gi
				g.slots = append(g.slots, k)
			}
			plan.ModuleSlot[m][s] = gi
		}
	}
	for _, g := range gats {
		plan.Slots = append(plan.Slots, g.slots)
		plan.GATShared = append(plan.GATShared, g.shared)
	}
	return plan, nil
}
