// Package link implements the traditional ("standard") linker of the
// reproduction: it merges relocatable modules, combines their GATs as
// literal pools (removing duplicate addresses and merging the individual
// GATs into one large GAT when possible), lays out memory, and resolves
// relocations into an executable image.
//
// The merged-but-not-yet-laid-out form (Program) is also the input to OM:
// the optimizer consumes the same resolved modules with relocations intact.
package link

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/objfile"
)

// TargetKind classifies what a resolved symbol reference points at.
type TargetKind uint8

const (
	// TDef is a procedure or data definition in some module.
	TDef TargetKind = iota
	// TCommon is a merged common block.
	TCommon
)

// Target is the resolution of one symbol reference.
type Target struct {
	Kind TargetKind
	Mod  int   // defining module (TDef)
	Sym  int32 // symbol index within the defining module (TDef)
	Name string
}

// Common is a merged common block (uninitialized exported data).
type Common struct {
	Name  string
	Size  uint64
	Align uint64
}

// Program is the set of merged modules with a resolved symbol space.
type Program struct {
	Objects []*objfile.Object
	// resolved[m][s] is the resolution of module m's symbol s.
	resolved [][]Target
	// Commons lists merged common blocks in first-appearance order.
	Commons []*Common
	// EntryName is the start symbol; defaults to "__start".
	EntryName string
	// Shared marks modules that belong to a dynamically-linked shared
	// library: their code and data are laid out in a far region with their
	// own global address tables, and no link-time optimizer may shorten
	// calls into them ("calls to dynamically linked library routines cannot
	// be optimized as statically linked calls can", §6). nil means all
	// modules are statically linked.
	Shared []bool

	// hash memoizes the program's content address (Hash); MarkShared
	// invalidates it. moduleKeys memoizes ModuleKeys, which otherwise
	// rescans every relocation on each layout round of the OM fixpoint.
	// Both use atomic.Value so a merged Program stays safe to share
	// read-only across concurrent links.
	hash       atomic.Value
	moduleKeys atomic.Value
}

// IsShared reports whether module m is part of a shared library.
func (p *Program) IsShared(m int) bool {
	return p.Shared != nil && m < len(p.Shared) && p.Shared[m]
}

// MarkShared flags the named modules as dynamically linked. It is the one
// post-Merge mutation of a Program, so it invalidates the memoized content
// hash; callers sharing a Program across concurrent links must finish
// marking before the first Run.
func (p *Program) MarkShared(moduleNames ...string) {
	if p.Shared == nil {
		p.Shared = make([]bool, len(p.Objects))
	}
	for _, name := range moduleNames {
		for m, obj := range p.Objects {
			if obj.Name == name {
				p.Shared[m] = true
			}
		}
	}
	p.hash.Store("")
}

// Hash returns the program's content address: the hash of every module's
// content hash in merge order, the shared-library marking, and the entry
// symbol. Two Programs with equal hashes lift to identical symbolic form,
// which is what keys the decoded-program and lifted-form caches. The result
// is memoized; MarkShared invalidates it.
func (p *Program) Hash() string {
	if h, ok := p.hash.Load().(string); ok && h != "" {
		return h
	}
	d := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		d.Write(n[:])
		d.Write([]byte(s))
	}
	writeStr("link-program/v1")
	writeStr(p.EntryName)
	for m, obj := range p.Objects {
		writeStr(obj.Hash())
		if p.IsShared(m) {
			writeStr("shared")
		}
	}
	h := fmt.Sprintf("%x", d.Sum(nil))
	p.hash.Store(h)
	return h
}

// Resolve returns the resolution of module m's symbol s.
func (p *Program) Resolve(m int, s int32) Target { return p.resolved[m][s] }

// DefSymbol returns the defining objfile.Symbol for a TDef target.
func (p *Program) DefSymbol(t Target) *objfile.Symbol {
	return &p.Objects[t.Mod].Symbols[t.Sym]
}

// FindCommon returns the merged common with the given name.
func (p *Program) FindCommon(name string) *Common {
	for _, c := range p.Commons {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FindProc locates an exported procedure definition by name.
func (p *Program) FindProc(name string) (Target, bool) {
	for m, obj := range p.Objects {
		for s := range obj.Symbols {
			sym := &obj.Symbols[s]
			if sym.Name == name && sym.Kind == objfile.SymProc {
				return Target{Kind: TDef, Mod: m, Sym: int32(s), Name: name}, true
			}
		}
	}
	return Target{}, false
}

// Merge validates and merges the modules, resolving every symbol reference.
// Resolution rules follow classic Unix linking: exported definitions win
// over commons; commons of the same name merge to the largest size; an
// undefined exported reference is an error.
func Merge(objects []*objfile.Object) (*Program, error) {
	p := &Program{Objects: objects, EntryName: "__start"}

	type def struct {
		mod int
		sym int32
	}
	exported := make(map[string]def)
	commons := make(map[string]*Common)

	for m, obj := range objects {
		if err := obj.Validate(); err != nil {
			return nil, fmt.Errorf("link: module %d: %w", m, err)
		}
		for s := range obj.Symbols {
			sym := &obj.Symbols[s]
			switch sym.Kind {
			case objfile.SymProc, objfile.SymData:
				if !sym.Exported {
					// Module-local; still must not collide with another
					// module's local of the same name, since names are the
					// global key for mangled statics.
					continue
				}
				if prev, ok := exported[sym.Name]; ok {
					return nil, fmt.Errorf("link: %s multiply defined (modules %s and %s)",
						sym.Name, objects[prev.mod].Name, obj.Name)
				}
				exported[sym.Name] = def{m, int32(s)}
			case objfile.SymCommon:
				c, ok := commons[sym.Name]
				if !ok {
					c = &Common{Name: sym.Name, Size: sym.Size, Align: max64(8, sym.Align)}
					commons[sym.Name] = c
					p.Commons = append(p.Commons, c)
				} else {
					c.Size = max64(c.Size, sym.Size)
					c.Align = max64(c.Align, sym.Align)
				}
			}
		}
	}

	// A definition anywhere suppresses the common of the same name.
	if len(p.Commons) > 0 {
		kept := p.Commons[:0]
		for _, c := range p.Commons {
			if _, defined := exported[c.Name]; !defined {
				kept = append(kept, c)
			}
		}
		p.Commons = kept
	}

	// Resolve every symbol of every module.
	p.resolved = make([][]Target, len(objects))
	for m, obj := range objects {
		p.resolved[m] = make([]Target, len(obj.Symbols))
		for s := range obj.Symbols {
			sym := &obj.Symbols[s]
			switch sym.Kind {
			case objfile.SymProc, objfile.SymData:
				p.resolved[m][s] = Target{Kind: TDef, Mod: m, Sym: int32(s), Name: sym.Name}
			case objfile.SymCommon, objfile.SymUndef:
				if d, ok := exported[sym.Name]; ok {
					p.resolved[m][s] = Target{Kind: TDef, Mod: d.mod, Sym: d.sym, Name: sym.Name}
					continue
				}
				if _, ok := commons[sym.Name]; ok && p.FindCommon(sym.Name) != nil {
					p.resolved[m][s] = Target{Kind: TCommon, Name: sym.Name}
					continue
				}
				if sym.Kind == objfile.SymUndef {
					return nil, fmt.Errorf("link: undefined symbol %s (referenced from %s)", sym.Name, obj.Name)
				}
				// A common suppressed by a definition was handled above;
				// reaching here means the definition exists.
				p.resolved[m][s] = Target{Kind: TCommon, Name: sym.Name}
			}
		}
	}
	return p, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TargetKey returns a stable identity for a resolved target plus addend,
// used to deduplicate GAT slots.
type TargetKey struct {
	Kind   TargetKind
	Mod    int
	Sym    int32
	Name   string
	Addend int64
}

// Key builds the dedup key for target+addend. Name is carried for
// diagnostics on both kinds; (Mod, Sym) is the identity for definitions.
func Key(t Target, addend int64) TargetKey {
	if t.Kind == TCommon {
		return TargetKey{Kind: TCommon, Name: t.Name, Addend: addend}
	}
	return TargetKey{Kind: TDef, Mod: t.Mod, Sym: t.Sym, Name: t.Name, Addend: addend}
}
