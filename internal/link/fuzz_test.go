package link

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/objfile"
)

// fuzzSeedModule builds a small self-contained module that links on its own:
// an exported __start procedure, one GAT slot, and one datum — so the fuzzer
// starts from an input that reaches Layout, not just Merge's error paths.
func fuzzSeedModule() *objfile.Object {
	o := objfile.New("seed")
	o.Sections[objfile.SecText].Data = make([]byte, 32)
	o.Sections[objfile.SecText].Size = 32
	o.Sections[objfile.SecLita].Data = make([]byte, 8)
	o.Sections[objfile.SecLita].Size = 8
	o.Sections[objfile.SecSData].Data = make([]byte, 8)
	o.Sections[objfile.SecSData].Size = 8
	pi := o.AddSymbol(objfile.Symbol{
		Name: "__start", Kind: objfile.SymProc, Section: objfile.SecText,
		Value: 0, End: 32, Exported: true, UsesGP: true,
	})
	vi := o.AddSymbol(objfile.Symbol{
		Name: "v", Kind: objfile.SymData, Section: objfile.SecSData,
		Value: 0, Size: 8, Exported: true, Align: 8,
	})
	o.Relocs = append(o.Relocs,
		objfile.Reloc{Kind: objfile.RRefQuad, Section: objfile.SecLita, Offset: 0, Symbol: vi},
		objfile.Reloc{Kind: objfile.RLiteral, Section: objfile.SecText, Offset: 8, Symbol: vi, Extra: 0},
		objfile.Reloc{Kind: objfile.RLituseBase, Section: objfile.SecText, Offset: 12, Symbol: -1, Extra: 8},
		objfile.Reloc{Kind: objfile.RGPDisp, Section: objfile.SecText, Offset: 0, Symbol: pi, Addend: 0, Extra: 4},
	)
	return o
}

// FuzzLink: any byte string that decodes as an object module must merge and
// lay out to a valid image or fail with a clean error — never panic and
// never allocate an image driven by a corrupt header.
func FuzzLink(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedModule().Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		obj, err := objfile.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		im, err := Link([]*objfile.Object{obj})
		if err != nil {
			return
		}
		if verr := im.Validate(); verr != nil {
			t.Fatalf("Link produced an invalid image: %v", verr)
		}
	})
}

// TestCrasherCorpusNoPanic replays the minimized crasher corpus through the
// full decode-merge-layout path: inputs that once drove index or allocation
// panics in Layout must now be rejected cleanly.
func TestCrasherCorpusNoPanic(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzLink")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("crasher corpus is empty")
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a fuzz corpus file", e.Name())
		}
		s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")"))
		if err != nil {
			t.Fatalf("%s: bad corpus payload: %v", e.Name(), err)
		}
		obj, err := objfile.Read(bytes.NewReader([]byte(s)))
		if err != nil {
			continue // rejected at decode: exactly what the hardening promises
		}
		if _, err := Link([]*objfile.Object{obj}); err == nil {
			t.Errorf("%s: crasher input now links cleanly; corpus is stale", e.Name())
		}
	}
}

// TestFuzzSeedLinks keeps the seed honest: it must actually link, so the
// fuzzer explores Layout rather than bouncing off Merge.
func TestFuzzSeedLinks(t *testing.T) {
	im, err := Link([]*objfile.Object{fuzzSeedModule()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := im.FindSymbol("__start"); !ok {
		t.Fatal("seed image lost its entry symbol")
	}
}
