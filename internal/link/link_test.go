package link

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/axp"
	"repro/internal/objfile"
	"repro/internal/tcc"
)

// obj builds a minimal module with one procedure and the given extras.
func obj(t *testing.T, name, src string) *objfile.Object {
	t.Helper()
	o, err := tcc.Compile(name, []tcc.Source{{Name: name, Text: src}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return o
}

func TestMergeDuplicateDefinition(t *testing.T) {
	a := obj(t, "a", "long f() { return 1; }")
	b := obj(t, "b", "long f() { return 2; }")
	if _, err := Merge([]*objfile.Object{a, b}); err == nil ||
		!strings.Contains(err.Error(), "multiply defined") {
		t.Fatalf("expected multiply-defined error, got %v", err)
	}
}

func TestMergeUndefinedSymbol(t *testing.T) {
	a := obj(t, "a", "long g(long x); long f() { return g(1); }")
	if _, err := Merge([]*objfile.Object{a}); err == nil ||
		!strings.Contains(err.Error(), "undefined symbol") {
		t.Fatalf("expected undefined-symbol error, got %v", err)
	}
}

func TestMergeCommons(t *testing.T) {
	// The same common in two modules merges to the largest size.
	a := obj(t, "a", "long shared[4]; long fa() { return shared[0]; }")
	b := obj(t, "b", "long shared[16]; long fb() { return shared[1]; }")
	p, err := Merge([]*objfile.Object{a, b})
	if err != nil {
		t.Fatal(err)
	}
	c := p.FindCommon("shared")
	if c == nil || c.Size != 128 {
		t.Fatalf("common shared = %+v, want 128 bytes", c)
	}

	// A definition suppresses the common.
	d := obj(t, "d", "long shared2 = 7;")
	e := obj(t, "e", "long shared2[8]; long fe() { return shared2[0]; }")
	p2, err := Merge([]*objfile.Object{d, e})
	if err != nil {
		t.Fatal(err)
	}
	if p2.FindCommon("shared2") != nil {
		t.Fatal("definition should suppress the common")
	}
	// And the common reference resolves to the definition.
	tg, ok := p2.FindProc("fe")
	if !ok {
		t.Fatal("no fe")
	}
	_ = tg
}

func TestLinkStaticsDoNotCollide(t *testing.T) {
	// Two modules with same-named statics must coexist (mangled).
	a := obj(t, "a", "static long s = 1; long fa() { return s; }")
	b := obj(t, "b", "static long s = 2; long fb() { return s; }")
	if _, err := Link([]*objfile.Object{a, b, crt(t, "fa")}); err != nil {
		t.Fatal(err)
	}
}

// crt builds a __start that calls the named function.
func crt(t *testing.T, callee string) *objfile.Object {
	return obj(t, "crt", `
long `+callee+`();
long __start() {
	__halt(`+callee+`());
	return 0;
}
`)
}

func TestLayoutInvariants(t *testing.T) {
	a := obj(t, "a", `
long g1 = 5;
long big[2000];
double d = 1.5;
static long loc[4];
long fa() { loc[0] = g1; big[3] = loc[0]; return big[3]; }
`)
	im, err := Link([]*objfile.Object{a, crt(t, "fa")})
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	// GP window must cover the whole GAT.
	for _, g := range im.GATs {
		if int64(g.Start)-int64(g.GP) < axp.MemDispMin ||
			int64(g.End-8)-int64(g.GP) > axp.MemDispMax {
			t.Errorf("GAT [%#x,%#x) not covered by GP %#x", g.Start, g.End, g.GP)
		}
	}
	// Symbols land inside their segments; procedures carry a GP.
	text := im.TextSegment()
	data := im.DataSegment()
	for _, s := range im.Symbols {
		switch s.Kind {
		case objfile.SymProc:
			if s.Addr < text.Addr || s.Addr+s.Size > text.End() {
				t.Errorf("proc %s outside text", s.Name)
			}
			if s.GP == 0 {
				t.Errorf("proc %s has no GP", s.Name)
			}
		case objfile.SymData:
			if s.Size > 0 && (s.Addr < data.Addr || s.Addr+s.Size > data.End()) {
				t.Errorf("data %s [%#x,+%d) outside data segment", s.Name, s.Addr, s.Size)
			}
		}
	}
	// Text decodes.
	if _, err := axp.DecodeAll(text.Data); err != nil {
		t.Fatal(err)
	}
}

func TestMissingEntry(t *testing.T) {
	a := obj(t, "a", "long f() { return 0; }")
	if _, err := Link([]*objfile.Object{a}); err == nil ||
		!strings.Contains(err.Error(), "__start") {
		t.Fatalf("expected missing-entry error, got %v", err)
	}
}

func TestSplitGPDispQuick(t *testing.T) {
	f := func(v int32) bool {
		hi, lo, err := SplitGPDisp(int64(v))
		if err != nil {
			// Only values near the edges of int32 may fail.
			return v > 0x7FFF0000 || v < -0x7FFF0000
		}
		return int64(hi)*65536+int64(lo) == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignGATsDedup(t *testing.T) {
	// Two modules referencing the same exported global: the merged GAT
	// dedups the slot.
	a := obj(t, "a", "long shared = 3; long fa() { return shared; }")
	b := obj(t, "b", "extern long shared; long fb() { return shared + 1; }")
	p, err := Merge([]*objfile.Object{a, b})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := AssignGATs(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Slots) != 1 {
		t.Fatalf("expected one GAT, got %d", len(plan.Slots))
	}
	// shared must appear exactly once.
	count := 0
	for _, k := range plan.Slots[0] {
		if k.Kind == TDef && p.Objects[k.Mod].Symbols[k.Sym].Name == "shared" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shared appears %d times in the GAT, want 1", count)
	}
}

func TestAssignGATsKeepFilter(t *testing.T) {
	a := obj(t, "a", "long g1 = 1; long g2 = 2; long fa() { return g1 + g2; }")
	p, err := Merge([]*objfile.Object{a})
	if err != nil {
		t.Fatal(err)
	}
	full, err := AssignGATs(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	none, err := AssignGATs(p, func(m, slot int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Slots[0]) != 0 {
		t.Fatalf("keep=false left %d slots", len(none.Slots[0]))
	}
	if len(full.Slots[0]) == 0 {
		t.Fatal("no slots without filter")
	}
	for _, s := range none.ModuleSlot[0] {
		if s != -1 {
			t.Fatal("dropped slot should map to -1")
		}
	}
}
