package objfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Canonical Alpha/OSF memory layout bases used by the linker and OM.
const (
	// TextBase is the load address of the text segment.
	TextBase uint64 = 0x1_2000_0000
	// DataBase is the load address of the data segment (.lita, .sdata,
	// .data, .sbss, .bss in that order).
	DataBase uint64 = 0x1_4000_0000
	// SharedTextBase / SharedDataBase are the load regions of
	// dynamically-linked shared libraries, far from the static part (a
	// shared library "may be mapped to an address far from the table for
	// the rest of the program").
	SharedTextBase uint64 = 0x1_6000_0000
	SharedDataBase uint64 = 0x1_8000_0000
	// StackTop is the initial stack pointer handed to programs.
	StackTop uint64 = 0x1_2000_0000 - 0x10000
	// StackSize is the reserved stack extent below StackTop.
	StackSize uint64 = 1 << 22
)

// ImageSymbol names an address in a linked executable. Procedures carry the
// GP value their code expects.
type ImageSymbol struct {
	Name string
	Addr uint64
	Size uint64
	Kind SymbolKind
	GP   uint64 // procedures only: the GP value for this procedure
}

// Segment is a contiguous loadable region.
type Segment struct {
	Name string
	Addr uint64
	Data []byte
	// ZeroSize extends the segment with zero-initialized bytes (bss).
	ZeroSize uint64
}

// End returns the first address past the segment, including bss extent.
func (s *Segment) End() uint64 { return s.Addr + uint64(len(s.Data)) + s.ZeroSize }

// Image is a fully linked executable: loadable segments, an entry point, and
// a symbol table retained for simulation, statistics, and disassembly.
type Image struct {
	Entry    uint64
	Segments []Segment
	Symbols  []ImageSymbol
	// GATs records each global address table's [start,end) address range
	// and its GP value; statistics and the paper's GAT-size numbers read
	// this.
	GATs []GATRange
}

// GATRange describes one global address table in the linked image.
type GATRange struct {
	Start, End uint64
	GP         uint64
}

// GATBytes returns the total size of all GATs in the image.
func (im *Image) GATBytes() uint64 {
	var n uint64
	for _, g := range im.GATs {
		n += g.End - g.Start
	}
	return n
}

// TextSegment returns the segment named ".text", or nil.
func (im *Image) TextSegment() *Segment { return im.segment(".text") }

// DataSegment returns the segment named ".data", or nil.
func (im *Image) DataSegment() *Segment { return im.segment(".data") }

func (im *Image) segment(name string) *Segment {
	for i := range im.Segments {
		if im.Segments[i].Name == name {
			return &im.Segments[i]
		}
	}
	return nil
}

// FindSymbol returns the image symbol with the given name.
func (im *Image) FindSymbol(name string) (ImageSymbol, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return ImageSymbol{}, false
}

// ProcAt returns the procedure symbol covering addr, if any.
func (im *Image) ProcAt(addr uint64) (ImageSymbol, bool) {
	for _, s := range im.Symbols {
		if s.Kind == SymProc && addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return ImageSymbol{}, false
}

// SortSymbols orders the symbol table by address then name, for stable output.
func (im *Image) SortSymbols() {
	sort.Slice(im.Symbols, func(i, j int) bool {
		if im.Symbols[i].Addr != im.Symbols[j].Addr {
			return im.Symbols[i].Addr < im.Symbols[j].Addr
		}
		return im.Symbols[i].Name < im.Symbols[j].Name
	})
}

// Validate checks segment sanity: sorted, non-overlapping, text present.
func (im *Image) Validate() error {
	if len(im.Segments) == 0 {
		return fmt.Errorf("image: no segments")
	}
	for i := range im.Segments {
		if i > 0 && im.Segments[i].Addr < im.Segments[i-1].End() {
			return fmt.Errorf("image: segment %s (%#x) overlaps %s (ends %#x)",
				im.Segments[i].Name, im.Segments[i].Addr,
				im.Segments[i-1].Name, im.Segments[i-1].End())
		}
	}
	if im.TextSegment() == nil {
		return fmt.Errorf("image: no .text segment")
	}
	for i := range im.Segments {
		seg := &im.Segments[i]
		if isTextName(seg.Name) && im.Entry >= seg.Addr && im.Entry < seg.End() {
			return nil
		}
	}
	return fmt.Errorf("image: entry %#x outside every text segment", im.Entry)
}

func isTextName(name string) bool {
	return len(name) >= 5 && name[:5] == ".text"
}

// TextSegments returns every executable segment (".text" and ".text.so").
func (im *Image) TextSegments() []*Segment {
	var out []*Segment
	for i := range im.Segments {
		if isTextName(im.Segments[i].Name) {
			out = append(out, &im.Segments[i])
		}
	}
	return out
}

// Write serializes the image.
func (im *Image) Write(w io.Writer) error {
	cw := &countWriter{w: bufio.NewWriter(w)}
	cw.bytesRaw([]byte(imgMagic))
	cw.u32(version)
	cw.u64(im.Entry)
	cw.u64(uint64(len(im.Segments)))
	for _, s := range im.Segments {
		cw.str(s.Name)
		cw.u64(s.Addr)
		cw.bytes(s.Data)
		cw.u64(s.ZeroSize)
	}
	cw.u64(uint64(len(im.Symbols)))
	for _, s := range im.Symbols {
		cw.str(s.Name)
		cw.u64(s.Addr)
		cw.u64(s.Size)
		cw.u8(uint8(s.Kind))
		cw.u64(s.GP)
	}
	cw.u64(uint64(len(im.GATs)))
	for _, g := range im.GATs {
		cw.u64(g.Start)
		cw.u64(g.End)
		cw.u64(g.GP)
	}
	if cw.err != nil {
		return cw.err
	}
	return cw.w.Flush()
}

// ReadImage deserializes an image written by Write.
func ReadImage(r io.Reader) (*Image, error) {
	rd := &reader{r: bufio.NewReader(r)}
	var magic [4]byte
	rd.raw(magic[:])
	if rd.err == nil && string(magic[:]) != imgMagic {
		return nil, fmt.Errorf("objfile: %w: bad image magic %q", ErrBadMagic, magic[:])
	}
	if v := rd.u32(); rd.err == nil && v != version {
		return nil, fmt.Errorf("objfile: %w: unsupported image version %d", ErrBadMagic, v)
	}
	im := &Image{Entry: rd.u64()}
	nseg := rd.u64()
	for i := uint64(0); i < nseg && rd.err == nil; i++ {
		var s Segment
		s.Name = rd.str()
		s.Addr = rd.u64()
		s.Data = rd.bytes(maxBlob)
		s.ZeroSize = rd.u64()
		im.Segments = append(im.Segments, s)
	}
	nsym := rd.u64()
	for i := uint64(0); i < nsym && rd.err == nil; i++ {
		var s ImageSymbol
		s.Name = rd.str()
		s.Addr = rd.u64()
		s.Size = rd.u64()
		s.Kind = SymbolKind(rd.u8())
		s.GP = rd.u64()
		im.Symbols = append(im.Symbols, s)
	}
	ngat := rd.u64()
	for i := uint64(0); i < ngat && rd.err == nil; i++ {
		var g GATRange
		g.Start = rd.u64()
		g.End = rd.u64()
		g.GP = rd.u64()
		im.GATs = append(im.GATs, g)
	}
	if rd.err != nil {
		return nil, fmt.Errorf("objfile: read image: %w", rd.err)
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return im, nil
}

// PutUint64 stores v little-endian at data[off:].
func PutUint64(data []byte, off uint64, v uint64) {
	binary.LittleEndian.PutUint64(data[off:], v)
}

// Uint64At reads a little-endian quadword at data[off:].
func Uint64At(data []byte, off uint64) uint64 {
	return binary.LittleEndian.Uint64(data[off:])
}

// PutUint32 stores v little-endian at data[off:].
func PutUint32(data []byte, off uint64, v uint32) {
	binary.LittleEndian.PutUint32(data[off:], v)
}

// Uint32At reads a little-endian word at data[off:].
func Uint32At(data []byte, off uint64) uint32 {
	return binary.LittleEndian.Uint32(data[off:])
}
