package objfile

import (
	"bytes"
	"errors"
	"testing"
)

// typedDecodeError reports whether err belongs to one of the package's
// sentinel classes. Every rejection of malformed input must be classifiable;
// an unclassified error means a check bypassed the typed-error contract.
func typedDecodeError(err error) bool {
	for _, sentinel := range []error{
		ErrTruncated, ErrBadMagic, ErrBadSymbol, ErrBadReloc, ErrBadSection, ErrTooLarge,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// FuzzObjfileRead: Read must never panic, anything it accepts must satisfy
// Validate and survive a write/read round trip.
func FuzzObjfileRead(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleObject().Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(objMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		obj, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := obj.Validate(); verr != nil {
			t.Fatalf("Read returned an invalid object: %v", verr)
		}
		var out bytes.Buffer
		if err := obj.Write(&out); err != nil {
			t.Fatalf("accepted object does not re-serialize: %v", err)
		}
		if _, err := Read(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip of accepted object rejected: %v", err)
		}
	})
}

// FuzzImageRead: same contract for executables.
func FuzzImageRead(f *testing.F) {
	var buf bytes.Buffer
	if err := sampleImage().Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(imgMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := ReadImage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := im.Validate(); verr != nil {
			t.Fatalf("ReadImage returned an invalid image: %v", verr)
		}
		var out bytes.Buffer
		if err := im.Write(&out); err != nil {
			t.Fatalf("accepted image does not re-serialize: %v", err)
		}
	})
}

// TestReadErrorsAreTyped pins the typed-error contract on hand-picked
// malformed inputs (the minimized fuzz corpus exercises the rest).
func TestReadErrorsAreTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleObject().Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := Read(bytes.NewReader(full[:len(full)/2])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated input: got %v, want ErrTruncated", err)
	}
	if _, err := Read(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}
	if _, err := ReadImage(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad image magic: got %v, want ErrBadMagic", err)
	}

	cases := []struct {
		name   string
		mutate func(*Object)
		want   error
	}{
		{"negative refquad symbol", func(o *Object) { o.Relocs[0].Symbol = -1 }, ErrBadReloc},
		{"literal slot out of range", func(o *Object) { o.Relocs[2].Extra = 99 }, ErrBadReloc},
		{"gpdisp partner outside text", func(o *Object) { o.Relocs[4].Extra = 1 << 20 }, ErrBadReloc},
		{"non-power-of-two align", func(o *Object) { o.Symbols[3].Align = 24 }, ErrBadSymbol},
		{"huge common", func(o *Object) { o.Symbols[3].Size = 1 << 40 }, ErrTooLarge},
		{"huge bss", func(o *Object) { o.Sections[SecBss].Size = 1 << 40 }, ErrTooLarge},
		{"data symbol overflow", func(o *Object) {
			o.Symbols[1].Value = ^uint64(0) - 1
			o.Symbols[1].Size = 4
		}, ErrBadSymbol},
	}
	for _, c := range cases {
		o := sampleObject()
		c.mutate(o)
		err := o.Validate()
		if !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
		if err != nil && !typedDecodeError(err) {
			t.Errorf("%s: error %v not classifiable by sentinel", c.name, err)
		}
	}
}
