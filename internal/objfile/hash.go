package objfile

import (
	"crypto/sha256"
	"fmt"
)

// Hash returns the SHA-256 content address of the module's serialized form,
// memoizing the result on the object: the incremental link pipeline hashes
// the same modules once per decode rather than once per link. The hash is
// only valid while the object is treated as immutable — every consumer past
// the compiler does treat modules as read-only, and the caches built on this
// hash (decoded programs, lifted procedures) depend on that discipline.
func (o *Object) Hash() string {
	if h, ok := o.hash.Load().(string); ok {
		return h
	}
	d := sha256.New()
	if err := o.Write(d); err != nil {
		// Write to a hasher cannot fail for a structurally valid object;
		// an unserializable one gets a non-colliding poison key.
		return fmt.Sprintf("!unserializable:%v", err)
	}
	h := fmt.Sprintf("%x", d.Sum(nil))
	o.hash.Store(h)
	return h
}
