// Package objfile defines the relocatable object format produced by the tcc
// compiler and consumed by the standard linker and by OM.
//
// The format is a simplified ECOFF: named sections (.text, .data, .sdata,
// .bss, .lita), a symbol table that records procedure boundaries and linkage,
// and relocation records. Crucially it carries the three relocation kinds the
// paper identifies as the "hints" that make link-time analysis tractable:
//
//   - R_LITERAL marks an address load (ldq rX, slot(gp)) and names the .lita
//     slot it reads.
//   - R_LITUSE links each use of a loaded address (the subsequent load, store,
//     or jsr) back to its address load.
//   - R_GPDISP marks the ldah/lda pair that establishes GP from a code
//     address (PV on entry, RA after a call).
package objfile

import (
	"fmt"
	"sync/atomic"
)

// SectionKind identifies one of the fixed sections of an object module.
type SectionKind uint8

const (
	SecText  SectionKind = iota // instructions
	SecData                     // initialized data
	SecSData                    // small initialized data (near-GAT candidates)
	SecBss                      // uninitialized data (size only)
	SecSBss                     // small uninitialized data
	SecLita                     // the module's global address table (GAT)
	NumSections
	// SecNone marks symbols not defined in any section (undefined/common).
	SecNone SectionKind = 0xFF
)

var sectionNames = [NumSections]string{".text", ".data", ".sdata", ".bss", ".sbss", ".lita"}

// String returns the conventional section name.
func (k SectionKind) String() string {
	if k < NumSections {
		return sectionNames[k]
	}
	if k == SecNone {
		return "*none*"
	}
	return fmt.Sprintf(".sec%d", uint8(k))
}

// IsBss reports whether the section has no file contents (size only).
func (k SectionKind) IsBss() bool { return k == SecBss || k == SecSBss }

// Section holds one section's contents. For bss sections Data is empty and
// Size gives the allocation size; otherwise Size == len(Data).
type Section struct {
	Data []byte
	Size uint64
}

// SymbolKind classifies symbol-table entries.
type SymbolKind uint8

const (
	SymProc   SymbolKind = iota // procedure in .text
	SymData                     // variable in a data/bss section
	SymCommon                   // uninitialized global without a home yet
	SymUndef                    // reference to a symbol in another module
)

// String returns the symbol-kind name.
func (k SymbolKind) String() string {
	switch k {
	case SymProc:
		return "proc"
	case SymData:
		return "data"
	case SymCommon:
		return "common"
	case SymUndef:
		return "undef"
	}
	return fmt.Sprintf("sym%d", uint8(k))
}

// Symbol is one symbol-table entry. For SymProc, Value and End delimit the
// procedure's half-open byte range within .text, and UsesGP records whether
// the procedure establishes GP in its prologue. For SymData, Value is the
// offset within Section. For SymCommon, Size is the required allocation and
// Align its alignment. SymUndef entries carry only a name.
type Symbol struct {
	Name     string
	Kind     SymbolKind
	Section  SectionKind
	Value    uint64
	End      uint64
	Size     uint64
	Align    uint64
	Exported bool
	UsesGP   bool
}

// RelocKind identifies a relocation action.
type RelocKind uint8

const (
	// RLiteral: the instruction at Offset is an address load ldq rX,?(gp).
	// Extra is the slot index within this module's .lita; Symbol/Addend
	// mirror the slot's target for convenience.
	RLiteral RelocKind = iota
	// RLituseBase: the instruction at Offset uses, as its base register, the
	// address loaded by the RLiteral whose instruction offset is Extra.
	RLituseBase
	// RLituseJSR: the jsr at Offset jumps through the PV loaded by the
	// RLiteral at Extra.
	RLituseJSR
	// RGPDisp: the ldah at Offset and the lda at Extra together add a 32-bit
	// displacement to a base register holding the final address of text
	// offset Addend (the anchor); the pair must be patched so the result is
	// the procedure's GP value.
	RGPDisp
	// RBrAddr: the branch at Offset targets Symbol+Addend (bytes).
	RBrAddr
	// RRefQuad: the 8 bytes at Offset in Section hold the address of
	// Symbol+Addend.
	RRefQuad
	// RGPRel16: the instruction at Offset addresses Symbol+Addend directly
	// through GP with a 16-bit displacement (optimistic compilation, like
	// the MIPS -G convention). The linker must verify reachability and
	// refuse to link otherwise.
	RGPRel16
)

// String returns the relocation-kind name.
func (k RelocKind) String() string {
	switch k {
	case RLiteral:
		return "LITERAL"
	case RLituseBase:
		return "LITUSE_BASE"
	case RLituseJSR:
		return "LITUSE_JSR"
	case RGPDisp:
		return "GPDISP"
	case RBrAddr:
		return "BRADDR"
	case RRefQuad:
		return "REFQUAD"
	case RGPRel16:
		return "GPREL16"
	}
	return fmt.Sprintf("reloc%d", uint8(k))
}

// Reloc is one relocation record. Offset is a byte offset within Section.
// Symbol indexes the module symbol table, or is -1 when unused.
type Reloc struct {
	Kind    RelocKind
	Section SectionKind
	Offset  uint64
	Symbol  int32
	Addend  int64
	Extra   uint64
}

// Object is one relocatable module.
type Object struct {
	Name     string
	Sections [NumSections]Section
	Symbols  []Symbol
	Relocs   []Reloc

	// hash memoizes the module's content address (see Hash). atomic.Value
	// rather than a mutex so an Object stays trivially copyable.
	hash atomic.Value
}

// New returns an empty object module with the given name.
func New(name string) *Object {
	return &Object{Name: name}
}

// AddSymbol appends sym and returns its index.
func (o *Object) AddSymbol(sym Symbol) int32 {
	o.Symbols = append(o.Symbols, sym)
	return int32(len(o.Symbols) - 1)
}

// FindSymbol returns the index of the first symbol with the given name, or -1.
func (o *Object) FindSymbol(name string) int32 {
	for i := range o.Symbols {
		if o.Symbols[i].Name == name {
			return int32(i)
		}
	}
	return -1
}

// LitaSlots returns the number of 8-byte GAT slots in the module.
func (o *Object) LitaSlots() int {
	return len(o.Sections[SecLita].Data) / 8
}

// Validate performs structural checks: section sizes, symbol ranges, and
// relocation targets. The linker and OM both call this on input modules.
func (o *Object) Validate() error {
	for k := SectionKind(0); k < NumSections; k++ {
		s := &o.Sections[k]
		if s.Size > maxBlob {
			return fmt.Errorf("%s: %w: section %v declares %d bytes", o.Name, ErrTooLarge, k, s.Size)
		}
		if k.IsBss() {
			if len(s.Data) != 0 {
				return fmt.Errorf("%s: %w: bss section %v has %d bytes of data", o.Name, ErrBadSection, k, len(s.Data))
			}
		} else if s.Size != uint64(len(s.Data)) {
			return fmt.Errorf("%s: %w: section %v size %d != data length %d", o.Name, ErrBadSection, k, s.Size, len(s.Data))
		}
	}
	if len(o.Sections[SecText].Data)%4 != 0 {
		return fmt.Errorf("%s: %w: .text length %d not instruction-aligned", o.Name, ErrBadSection, len(o.Sections[SecText].Data))
	}
	if len(o.Sections[SecLita].Data)%8 != 0 {
		return fmt.Errorf("%s: %w: .lita length %d not slot-aligned", o.Name, ErrBadSection, len(o.Sections[SecLita].Data))
	}
	for i, sym := range o.Symbols {
		// A declared alignment must be a power of two within reason: the
		// layout's rounding arithmetic ((addr+a-1) &^ (a-1)) is only sound
		// for powers of two, and a huge alignment would let one symbol
		// inflate the data segment without bound.
		if sym.Align != 0 && (sym.Align&(sym.Align-1) != 0 || sym.Align > maxAlign) {
			return fmt.Errorf("%s: %w: symbol %s alignment %d (want a power of two <= %d)",
				o.Name, ErrBadSymbol, sym.Name, sym.Align, maxAlign)
		}
		switch sym.Kind {
		case SymProc:
			if sym.Section != SecText {
				return fmt.Errorf("%s: %w: proc %s not in .text", o.Name, ErrBadSymbol, sym.Name)
			}
			if sym.End < sym.Value || sym.End > o.Sections[SecText].Size {
				return fmt.Errorf("%s: %w: proc %s range [%d,%d) outside .text (%d bytes)",
					o.Name, ErrBadSymbol, sym.Name, sym.Value, sym.End, o.Sections[SecText].Size)
			}
		case SymData:
			if sym.Section >= NumSections {
				return fmt.Errorf("%s: %w: data symbol %s in bad section", o.Name, ErrBadSymbol, sym.Name)
			}
			size := o.Sections[sym.Section].Size
			if sym.Value > size || sym.Size > size-sym.Value {
				return fmt.Errorf("%s: %w: data symbol %s [%d,+%d) outside %v",
					o.Name, ErrBadSymbol, sym.Name, sym.Value, sym.Size, sym.Section)
			}
		case SymCommon:
			if sym.Size == 0 {
				return fmt.Errorf("%s: %w: common %s has zero size", o.Name, ErrBadSymbol, sym.Name)
			}
			if sym.Size > maxBlob {
				return fmt.Errorf("%s: %w: common %s declares %d bytes", o.Name, ErrTooLarge, sym.Name, sym.Size)
			}
		case SymUndef:
			// name only
		default:
			return fmt.Errorf("%s: %w: symbol %d has unknown kind %v", o.Name, ErrBadSymbol, i, sym.Kind)
		}
	}
	for i, r := range o.Relocs {
		if r.Symbol >= int32(len(o.Symbols)) || r.Symbol < -1 {
			return fmt.Errorf("%s: %w: reloc %d references symbol %d of %d", o.Name, ErrBadReloc, i, r.Symbol, len(o.Symbols))
		}
		var sec SectionKind
		switch r.Kind {
		case RLiteral, RLituseBase, RLituseJSR, RGPDisp, RBrAddr, RGPRel16:
			sec = SecText
			if r.Section != SecText {
				return fmt.Errorf("%s: %w: reloc %d (%v) not in .text", o.Name, ErrBadReloc, i, r.Kind)
			}
			if r.Offset%4 != 0 {
				return fmt.Errorf("%s: %w: reloc %d (%v) misaligned offset %d", o.Name, ErrBadReloc, i, r.Kind, r.Offset)
			}
		case RRefQuad:
			sec = r.Section
			if sec >= NumSections || sec.IsBss() || sec == SecText {
				return fmt.Errorf("%s: %w: reloc %d REFQUAD in %v", o.Name, ErrBadReloc, i, sec)
			}
			if r.Offset%8 != 0 {
				return fmt.Errorf("%s: %w: reloc %d REFQUAD misaligned offset %d", o.Name, ErrBadReloc, i, r.Offset)
			}
		default:
			return fmt.Errorf("%s: %w: reloc %d has unknown kind %v", o.Name, ErrBadReloc, i, r.Kind)
		}
		if r.Offset >= o.Sections[sec].Size && !(r.Offset == 0 && o.Sections[sec].Size == 0) {
			return fmt.Errorf("%s: %w: reloc %d (%v) offset %d outside %v (%d bytes)",
				o.Name, ErrBadReloc, i, r.Kind, r.Offset, sec, o.Sections[sec].Size)
		}
		// Resolving kinds dereference Symbol; Extra indexes a structure the
		// consumer trusts. Both must be bounded here so the linker and OM can
		// index without rechecking.
		switch r.Kind {
		case RLiteral:
			if r.Symbol < 0 {
				return fmt.Errorf("%s: %w: reloc %d LITERAL without a symbol", o.Name, ErrBadReloc, i)
			}
			if r.Extra >= uint64(o.LitaSlots()) {
				return fmt.Errorf("%s: %w: reloc %d LITERAL slot %d of %d", o.Name, ErrBadReloc, i, r.Extra, o.LitaSlots())
			}
		case RLituseBase, RLituseJSR, RGPDisp:
			if r.Extra%4 != 0 || r.Extra >= o.Sections[SecText].Size {
				return fmt.Errorf("%s: %w: reloc %d (%v) partner offset %d outside .text (%d bytes)",
					o.Name, ErrBadReloc, i, r.Kind, r.Extra, o.Sections[SecText].Size)
			}
			if r.Kind == RGPDisp && (r.Addend < 0 || uint64(r.Addend) > o.Sections[SecText].Size) {
				return fmt.Errorf("%s: %w: reloc %d GPDISP anchor %d outside .text (%d bytes)",
					o.Name, ErrBadReloc, i, r.Addend, o.Sections[SecText].Size)
			}
		case RBrAddr, RGPRel16, RRefQuad:
			if r.Symbol < 0 {
				return fmt.Errorf("%s: %w: reloc %d (%v) without a symbol", o.Name, ErrBadReloc, i, r.Kind)
			}
		}
	}
	return nil
}

// maxAlign bounds a symbol's declared alignment (a corruption guard: layout
// rounds addresses up to the alignment, so an absurd value would inflate the
// image).
const maxAlign = 1 << 20
