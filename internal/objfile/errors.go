package objfile

import "errors"

// Typed error classes for malformed input. Read, ReadImage, and Validate wrap
// every rejection in one of these sentinels so callers (the linker, OM, the
// fuzz harness) can classify failures with errors.Is instead of string
// matching — and so a malformed module is always a clean error, never a
// panic, no matter how it was corrupted.
var (
	// ErrTruncated: the input ended before the declared structure did.
	ErrTruncated = errors.New("truncated input")
	// ErrBadMagic: the input does not start with the format's magic string
	// or carries an unsupported version.
	ErrBadMagic = errors.New("bad magic or version")
	// ErrBadSymbol: a symbol-table entry violates the format's invariants
	// (range outside its section, bad kind, zero-size common, bad alignment).
	ErrBadSymbol = errors.New("bad symbol")
	// ErrBadReloc: a relocation record violates the format's invariants
	// (offset outside its section, bad kind, out-of-range symbol or Extra).
	ErrBadReloc = errors.New("bad relocation")
	// ErrBadSection: a section violates the format's invariants (bss with
	// data, size/data mismatch, misaligned text or lita).
	ErrBadSection = errors.New("bad section")
	// ErrTooLarge: a declared size is implausibly large; honoring it would
	// let a corrupt header drive allocation.
	ErrTooLarge = errors.New("implausible size")
)
