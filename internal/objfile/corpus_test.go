package objfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// ReadCorpusDirForTesting parses every `go test fuzz v1` file in dir and
// returns name -> input bytes. Shared with the link package's corpus replay
// via the exported helper below.
func readCorpusDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(data), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a fuzz corpus file", e.Name())
		}
		payload := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		s, err := strconv.Unquote(payload)
		if err != nil {
			t.Fatalf("%s: bad corpus payload: %v", e.Name(), err)
		}
		out[e.Name()] = []byte(s)
	}
	if len(out) == 0 {
		t.Fatalf("corpus dir %s is empty", dir)
	}
	return out
}

// TestCrasherCorpusTyped replays the minimized crasher corpus: each input
// once panicked the decoder or the linker's address arithmetic; all of them
// must now fail Read with a classifiable typed error.
func TestCrasherCorpusTyped(t *testing.T) {
	for name, data := range readCorpusDir(t, filepath.Join("testdata", "fuzz", "FuzzObjfileRead")) {
		_, err := Read(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: crasher input now parses cleanly; corpus is stale", name)
			continue
		}
		if !typedDecodeError(err) {
			t.Errorf("%s: error %v is not one of the typed sentinels", name, err)
		}
	}
	for name, data := range readCorpusDir(t, filepath.Join("testdata", "fuzz", "FuzzImageRead")) {
		_, err := ReadImage(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: crasher image now parses cleanly; corpus is stale", name)
			continue
		}
		if !errors.Is(err, ErrTruncated) && !typedDecodeError(err) {
			t.Errorf("%s: error %v is not one of the typed sentinels", name, err)
		}
	}
}
