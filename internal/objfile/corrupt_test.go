package objfile

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestReaderNeverPanics flips random bytes in a serialized object and
// requires Read to either fail cleanly or return a validated object — never
// panic. This is the robustness contract the linker and OM rely on.
func TestReaderNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleObject().Write(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		mutated := append([]byte(nil), pristine...)
		flips := 1 + r.Intn(4)
		for i := 0; i < flips; i++ {
			pos := r.Intn(len(mutated))
			mutated[pos] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: reader panicked: %v", trial, p)
				}
			}()
			obj, err := Read(bytes.NewReader(mutated))
			if err == nil {
				// Whatever parsed must satisfy the validator's invariants.
				if verr := obj.Validate(); verr != nil {
					t.Fatalf("trial %d: Read returned an invalid object: %v", trial, verr)
				}
			}
		}()
	}
}

// TestImageReaderNeverPanics does the same for executables.
func TestImageReaderNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleImage().Write(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 400; trial++ {
		mutated := append([]byte(nil), pristine...)
		for i := 0; i < 1+r.Intn(4); i++ {
			pos := r.Intn(len(mutated))
			mutated[pos] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: image reader panicked: %v", trial, p)
				}
			}()
			im, err := ReadImage(bytes.NewReader(mutated))
			if err == nil {
				if verr := im.Validate(); verr != nil {
					t.Fatalf("trial %d: ReadImage returned an invalid image: %v", trial, verr)
				}
			}
		}()
	}
}
