package objfile

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleObject() *Object {
	o := New("mod1")
	o.Sections[SecText].Data = make([]byte, 64)
	o.Sections[SecText].Size = 64
	o.Sections[SecLita].Data = make([]byte, 16)
	o.Sections[SecLita].Size = 16
	o.Sections[SecSData].Data = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	o.Sections[SecSData].Size = 8
	o.Sections[SecBss].Size = 128
	pi := o.AddSymbol(Symbol{Name: "f", Kind: SymProc, Section: SecText, Value: 0, End: 64, Exported: true, UsesGP: true})
	vi := o.AddSymbol(Symbol{Name: "v", Kind: SymData, Section: SecSData, Value: 0, Size: 8, Exported: true, Align: 8})
	ui := o.AddSymbol(Symbol{Name: "g", Kind: SymUndef, Section: SecNone})
	o.AddSymbol(Symbol{Name: "c", Kind: SymCommon, Section: SecNone, Size: 40, Align: 8})
	o.Relocs = append(o.Relocs,
		Reloc{Kind: RRefQuad, Section: SecLita, Offset: 0, Symbol: vi},
		Reloc{Kind: RRefQuad, Section: SecLita, Offset: 8, Symbol: ui, Addend: 16},
		Reloc{Kind: RLiteral, Section: SecText, Offset: 8, Symbol: vi, Extra: 0},
		Reloc{Kind: RLituseBase, Section: SecText, Offset: 12, Symbol: -1, Extra: 8},
		Reloc{Kind: RGPDisp, Section: SecText, Offset: 0, Symbol: pi, Addend: 0, Extra: 4},
		Reloc{Kind: RBrAddr, Section: SecText, Offset: 20, Symbol: pi},
	)
	return o
}

func TestObjectRoundTrip(t *testing.T) {
	o := sampleObject()
	if err := o.Validate(); err != nil {
		t.Fatalf("sample object invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := o.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, back) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", o, back)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not an object file at all")); err == nil {
		t.Fatal("expected error for garbage input")
	}
	if _, err := Read(strings.NewReader("AXPO")); err == nil {
		t.Fatal("expected error for truncated input")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleObject().Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail, never panic.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		n := r.Intn(len(full))
		if _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes unexpectedly parsed", n, len(full))
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Object)
	}{
		{"ragged text", func(o *Object) {
			o.Sections[SecText].Data = o.Sections[SecText].Data[:62]
			o.Sections[SecText].Size = 62
		}},
		{"ragged lita", func(o *Object) {
			o.Sections[SecLita].Data = o.Sections[SecLita].Data[:12]
			o.Sections[SecLita].Size = 12
		}},
		{"size mismatch", func(o *Object) { o.Sections[SecData].Size = 5 }},
		{"bss with data", func(o *Object) { o.Sections[SecBss].Data = []byte{1} }},
		{"proc out of range", func(o *Object) { o.Symbols[0].End = 1000 }},
		{"proc wrong section", func(o *Object) { o.Symbols[0].Section = SecData }},
		{"data out of range", func(o *Object) { o.Symbols[1].Size = 100 }},
		{"zero-size common", func(o *Object) { o.Symbols[3].Size = 0 }},
		{"reloc bad symbol", func(o *Object) { o.Relocs[0].Symbol = 99 }},
		{"literal outside text", func(o *Object) { o.Relocs[2].Section = SecData }},
		{"misaligned literal", func(o *Object) { o.Relocs[2].Offset = 10 }},
		{"refquad in text", func(o *Object) { o.Relocs[0].Section = SecText }},
		{"misaligned refquad", func(o *Object) { o.Relocs[0].Offset = 4 }},
		{"reloc past end", func(o *Object) { o.Relocs[2].Offset = 64 }},
	}
	for _, c := range cases {
		o := sampleObject()
		c.mutate(o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFindSymbol(t *testing.T) {
	o := sampleObject()
	if i := o.FindSymbol("v"); i != 1 {
		t.Errorf("FindSymbol(v) = %d, want 1", i)
	}
	if i := o.FindSymbol("nosuch"); i != -1 {
		t.Errorf("FindSymbol(nosuch) = %d, want -1", i)
	}
	if n := o.LitaSlots(); n != 2 {
		t.Errorf("LitaSlots = %d, want 2", n)
	}
}

func sampleImage() *Image {
	text := make([]byte, 32)
	data := make([]byte, 24)
	return &Image{
		Entry: TextBase,
		Segments: []Segment{
			{Name: ".text", Addr: TextBase, Data: text},
			{Name: ".data", Addr: DataBase, Data: data, ZeroSize: 64},
		},
		Symbols: []ImageSymbol{
			{Name: "main", Addr: TextBase, Size: 32, Kind: SymProc, GP: DataBase + 32752},
			{Name: "v", Addr: DataBase + 8, Size: 8, Kind: SymData},
		},
		GATs: []GATRange{{Start: DataBase, End: DataBase + 8, GP: DataBase + 32752}},
	}
}

func TestImageRoundTrip(t *testing.T) {
	im := sampleImage()
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := im.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im, back) {
		t.Fatalf("image round trip mismatch:\n in=%+v\nout=%+v", im, back)
	}
	if got := back.GATBytes(); got != 8 {
		t.Errorf("GATBytes = %d, want 8", got)
	}
}

func TestImageQueries(t *testing.T) {
	im := sampleImage()
	if s, ok := im.FindSymbol("main"); !ok || s.Addr != TextBase {
		t.Errorf("FindSymbol(main) = %+v, %v", s, ok)
	}
	if _, ok := im.FindSymbol("nosuch"); ok {
		t.Error("FindSymbol(nosuch) should fail")
	}
	if p, ok := im.ProcAt(TextBase + 8); !ok || p.Name != "main" {
		t.Errorf("ProcAt = %+v, %v", p, ok)
	}
	if _, ok := im.ProcAt(DataBase); ok {
		t.Error("ProcAt(data) should fail")
	}
	if im.TextSegment() == nil || im.DataSegment() == nil {
		t.Error("segment lookups failed")
	}
}

func TestImageValidateErrors(t *testing.T) {
	im := sampleImage()
	im.Segments[1].Addr = TextBase + 16 // overlap text
	if err := im.Validate(); err == nil {
		t.Error("expected overlap error")
	}
	im = sampleImage()
	im.Entry = DataBase
	if err := im.Validate(); err == nil {
		t.Error("expected entry-outside-text error")
	}
	im = sampleImage()
	im.Segments = im.Segments[:0]
	if err := im.Validate(); err == nil {
		t.Error("expected no-segments error")
	}
}

func TestByteHelpersQuick(t *testing.T) {
	f := func(v uint64, w uint32) bool {
		buf := make([]byte, 16)
		PutUint64(buf, 0, v)
		PutUint32(buf, 8, w)
		return Uint64At(buf, 0) == v && Uint32At(buf, 8) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
