package objfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary format constants.
const (
	objMagic = "AXPO"
	imgMagic = "AXPX"
	version  = 1
)

type countWriter struct {
	w   *bufio.Writer
	err error
}

func (cw *countWriter) u8(v uint8) {
	if cw.err == nil {
		cw.err = cw.w.WriteByte(v)
	}
}

func (cw *countWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.bytesRaw(b[:])
}

func (cw *countWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.bytesRaw(b[:])
}

func (cw *countWriter) i64(v int64) { cw.u64(uint64(v)) }

func (cw *countWriter) bytesRaw(b []byte) {
	if cw.err == nil {
		_, cw.err = cw.w.Write(b)
	}
}

func (cw *countWriter) bytes(b []byte) {
	cw.u64(uint64(len(b)))
	cw.bytesRaw(b)
}

func (cw *countWriter) str(s string) {
	cw.u64(uint64(len(s)))
	if cw.err == nil {
		_, cw.err = cw.w.WriteString(s)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (rd *reader) u8() uint8 {
	if rd.err != nil {
		return 0
	}
	b, err := rd.r.ReadByte()
	rd.err = truncated(err)
	return b
}

// truncated maps short reads onto the typed sentinel.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

func (rd *reader) u32() uint32 {
	var b [4]byte
	rd.raw(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (rd *reader) u64() uint64 {
	var b [8]byte
	rd.raw(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (rd *reader) i64() int64 { return int64(rd.u64()) }

func (rd *reader) raw(b []byte) {
	if rd.err == nil {
		_, err := io.ReadFull(rd.r, b)
		rd.err = truncated(err)
	}
}

func (rd *reader) bytes(limit uint64) []byte {
	n := rd.u64()
	if rd.err != nil {
		return nil
	}
	if n > limit {
		rd.err = fmt.Errorf("%w: declared length %d exceeds limit %d", ErrTooLarge, n, limit)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	rd.raw(b)
	return b
}

func (rd *reader) str() string { return string(rd.bytes(1 << 20)) }

// maxBlob bounds any single serialized byte array, as a corruption guard.
const maxBlob = 1 << 30

// Write serializes the object module.
func (o *Object) Write(w io.Writer) error {
	cw := &countWriter{w: bufio.NewWriter(w)}
	cw.bytesRaw([]byte(objMagic))
	cw.u32(version)
	cw.str(o.Name)
	for k := SectionKind(0); k < NumSections; k++ {
		s := &o.Sections[k]
		cw.u64(s.Size)
		cw.bytes(s.Data)
	}
	cw.u64(uint64(len(o.Symbols)))
	for _, sym := range o.Symbols {
		cw.str(sym.Name)
		cw.u8(uint8(sym.Kind))
		cw.u8(uint8(sym.Section))
		cw.u64(sym.Value)
		cw.u64(sym.End)
		cw.u64(sym.Size)
		cw.u64(sym.Align)
		flags := uint8(0)
		if sym.Exported {
			flags |= 1
		}
		if sym.UsesGP {
			flags |= 2
		}
		cw.u8(flags)
	}
	cw.u64(uint64(len(o.Relocs)))
	for _, r := range o.Relocs {
		cw.u8(uint8(r.Kind))
		cw.u8(uint8(r.Section))
		cw.u64(r.Offset)
		cw.u32(uint32(r.Symbol))
		cw.i64(r.Addend)
		cw.u64(r.Extra)
	}
	if cw.err != nil {
		return cw.err
	}
	return cw.w.Flush()
}

// Read deserializes an object module written by Write.
func Read(r io.Reader) (*Object, error) {
	rd := &reader{r: bufio.NewReader(r)}
	var magic [4]byte
	rd.raw(magic[:])
	if rd.err == nil && string(magic[:]) != objMagic {
		return nil, fmt.Errorf("objfile: %w: bad magic %q", ErrBadMagic, magic[:])
	}
	if v := rd.u32(); rd.err == nil && v != version {
		return nil, fmt.Errorf("objfile: %w: unsupported version %d", ErrBadMagic, v)
	}
	o := New(rd.str())
	for k := SectionKind(0); k < NumSections; k++ {
		o.Sections[k].Size = rd.u64()
		o.Sections[k].Data = rd.bytes(maxBlob)
	}
	nsym := rd.u64()
	if rd.err == nil && nsym > math.MaxInt32 {
		return nil, fmt.Errorf("objfile: %w: symbol count %d", ErrTooLarge, nsym)
	}
	for i := uint64(0); i < nsym && rd.err == nil; i++ {
		var sym Symbol
		sym.Name = rd.str()
		sym.Kind = SymbolKind(rd.u8())
		sym.Section = SectionKind(rd.u8())
		sym.Value = rd.u64()
		sym.End = rd.u64()
		sym.Size = rd.u64()
		sym.Align = rd.u64()
		flags := rd.u8()
		sym.Exported = flags&1 != 0
		sym.UsesGP = flags&2 != 0
		o.Symbols = append(o.Symbols, sym)
	}
	nrel := rd.u64()
	if rd.err == nil && nrel > math.MaxInt32 {
		return nil, fmt.Errorf("objfile: %w: reloc count %d", ErrTooLarge, nrel)
	}
	for i := uint64(0); i < nrel && rd.err == nil; i++ {
		var rel Reloc
		rel.Kind = RelocKind(rd.u8())
		rel.Section = SectionKind(rd.u8())
		rel.Offset = rd.u64()
		rel.Symbol = int32(rd.u32())
		rel.Addend = rd.i64()
		rel.Extra = rd.u64()
		o.Relocs = append(o.Relocs, rel)
	}
	if rd.err != nil {
		return nil, fmt.Errorf("objfile: read: %w", rd.err)
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("objfile: read: %w", err)
	}
	return o, nil
}
