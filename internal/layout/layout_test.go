package layout

import (
	"math/rand"
	"reflect"
	"testing"
)

// apply returns the keys in placement order.
func apply(procs []Proc, pl Placement) []string {
	out := make([]string, 0, len(procs))
	for _, i := range pl.Order {
		out = append(out, procs[i].Key)
	}
	return out
}

// TestOrderChainsHotPair: the hottest caller/callee pair becomes adjacent,
// ahead of everything else; cold procedures stay last in input order.
func TestOrderChainsHotPair(t *testing.T) {
	procs := []Proc{
		{Key: "cold1"},
		{Key: "main", Weight: 10},
		{Key: "cold2"},
		{Key: "leaf", Weight: 1000},
		{Key: "mid", Weight: 900},
	}
	edges := []Edge{
		{From: 1, To: 4, Weight: 10},   // main -> mid
		{From: 4, To: 3, Weight: 1000}, // mid -> leaf
	}
	pl := Order(procs, edges)
	got := apply(procs, pl)
	want := []string{"main", "mid", "leaf", "cold1", "cold2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i, k := range []Kind{Cold, Chained, Cold, Chained, Chained} {
		if pl.Kind[i] != k {
			t.Errorf("Kind[%s] = %v, want %v", procs[i].Key, pl.Kind[i], k)
		}
	}
}

// TestOrderAdjacency: merging orients chains so the hot pair's endpoints
// touch: a->b hot and c->d hot, then b->c merges the two chains with b and
// c adjacent.
func TestOrderAdjacency(t *testing.T) {
	procs := []Proc{
		{Key: "a", Weight: 100},
		{Key: "b", Weight: 100},
		{Key: "c", Weight: 100},
		{Key: "d", Weight: 100},
	}
	edges := []Edge{
		{From: 0, To: 1, Weight: 50},
		{From: 2, To: 3, Weight: 40},
		{From: 1, To: 2, Weight: 30},
	}
	pl := Order(procs, edges)
	got := apply(procs, pl)
	pos := map[string]int{}
	for i, k := range got {
		pos[k] = i
	}
	adjacent := func(x, y string) bool {
		d := pos[x] - pos[y]
		return d == 1 || d == -1
	}
	if !adjacent("a", "b") || !adjacent("c", "d") || !adjacent("b", "c") {
		t.Fatalf("hot pairs not adjacent in %v", got)
	}
}

// TestOrderSingletons: executed procedures with no edges order by weight,
// ties by key; Kind is Hot.
func TestOrderSingletons(t *testing.T) {
	procs := []Proc{
		{Key: "b", Weight: 5},
		{Key: "a", Weight: 5},
		{Key: "z", Weight: 7},
	}
	pl := Order(procs, nil)
	got := apply(procs, pl)
	want := []string{"z", "a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range procs {
		if pl.Kind[i] != Hot {
			t.Errorf("Kind[%s] = %v, want Hot", procs[i].Key, pl.Kind[i])
		}
	}
}

// TestOrderEdgePromotesCold: a procedure with zero weight but a positive
// incident edge is treated as executed (defensive rule for synthetic
// profiles).
func TestOrderEdgePromotesCold(t *testing.T) {
	procs := []Proc{{Key: "a", Weight: 10}, {Key: "b"}}
	pl := Order(procs, []Edge{{From: 0, To: 1, Weight: 3}})
	if pl.Kind[1] != Chained {
		t.Fatalf("Kind[b] = %v, want Chained", pl.Kind[1])
	}
}

// TestOrderIgnoresDegenerateEdges: self-edges, zero weights, and
// out-of-range indices must not disturb the placement.
func TestOrderIgnoresDegenerateEdges(t *testing.T) {
	procs := []Proc{{Key: "a", Weight: 1}, {Key: "b", Weight: 2}}
	pl := Order(procs, []Edge{
		{From: 0, To: 0, Weight: 99},
		{From: 0, To: 1, Weight: 0},
		{From: -1, To: 1, Weight: 5},
		{From: 1, To: 7, Weight: 5},
	})
	got := apply(procs, pl)
	want := []string{"b", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// shuffle returns the procs permuted by perm, with edges re-indexed.
func shuffle(procs []Proc, edges []Edge, perm []int) ([]Proc, []Edge) {
	// perm[i] = new position of old index i.
	np := make([]Proc, len(procs))
	for i, p := range procs {
		np[perm[i]] = p
	}
	ne := make([]Edge, len(edges))
	for i, e := range edges {
		ne[i] = Edge{From: perm[e.From], To: perm[e.To], Weight: e.Weight}
	}
	return np, ne
}

// randomCase builds a random placement problem.
func randomCase(r *rand.Rand, n int) ([]Proc, []Edge) {
	procs := make([]Proc, n)
	for i := range procs {
		procs[i] = Proc{Key: string(rune('A'+i%26)) + string(rune('a'+i/26))}
		if r.Intn(3) > 0 {
			procs[i].Weight = uint64(r.Intn(1000))
		}
	}
	var edges []Edge
	for e := 0; e < n*2; e++ {
		edges = append(edges, Edge{
			From: r.Intn(n), To: r.Intn(n), Weight: uint64(r.Intn(500)),
		})
	}
	return procs, edges
}

// TestOrderIdempotent: the ordering is a fixpoint under hot-proc
// re-presentation — applying Order to the already-ordered list (same
// weights, re-indexed edges) returns the identity permutation for the hot
// part, and leaves cold procedures in the (already placed) order. This is
// the property that makes OM's layout pass idempotent.
func TestOrderIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		procs, edges := randomCase(r, 4+r.Intn(40))
		pl := Order(procs, edges)

		// Re-present the problem in placement order.
		perm := make([]int, len(procs))
		for newPos, old := range pl.Order {
			perm[old] = newPos
		}
		procs2, edges2 := shuffle(procs, edges, perm)
		pl2 := Order(procs2, edges2)
		for i, idx := range pl2.Order {
			if idx != i {
				t.Fatalf("trial %d: second layout moved position %d to %d (not idempotent)\norder1=%v\norder2=%v",
					trial, idx, i, apply(procs, pl), apply(procs2, pl2))
			}
		}
	}
}

// TestOrderInputOrderInvariant: permuting the input must not change the
// resulting key sequence for executed procedures (cold procedures preserve
// input order by design, so only the hot prefix is compared).
func TestOrderInputOrderInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		procs, edges := randomCase(r, 4+r.Intn(40))
		base := apply(procs, Order(procs, edges))

		perm := r.Perm(len(procs))
		procs2, edges2 := shuffle(procs, edges, perm)
		got := apply(procs2, Order(procs2, edges2))

		hotLen := 0
		pl := Order(procs, edges)
		for _, i := range pl.Order {
			if pl.Kind[i] != Cold {
				hotLen++
			}
		}
		if !reflect.DeepEqual(base[:hotLen], got[:hotLen]) {
			t.Fatalf("trial %d: hot order depends on input order\nbase=%v\ngot =%v", trial, base, got)
		}
	}
}

// TestOrderIsPermutation: Order always returns a permutation of the input.
func TestOrderIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		procs, edges := randomCase(r, 1+r.Intn(50))
		pl := Order(procs, edges)
		if len(pl.Order) != len(procs) {
			t.Fatalf("trial %d: %d placed, want %d", trial, len(pl.Order), len(procs))
		}
		seen := make([]bool, len(procs))
		for _, i := range pl.Order {
			if i < 0 || i >= len(procs) || seen[i] {
				t.Fatalf("trial %d: invalid permutation %v", trial, pl.Order)
			}
			seen[i] = true
		}
	}
}
