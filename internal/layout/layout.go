// Package layout computes a profile-guided procedure order using
// Pettis–Hansen-style call-graph chain merging: combine the directed call
// edges into undirected pair weights, process pairs hottest-first, merging
// the chains containing the two procedures so hot caller/callee pairs land
// adjacent in the address space, then place chains by total weight and
// leave never-executed procedures at the end in their original order.
//
// The ordering is deterministic and input-order invariant: every tie breaks
// on the procedures' stable Key strings, never on input position, so
// re-laying-out an already-laid-out program reproduces the same order
// (idempotence — a property the OM layout pass's tests rely on).
package layout

import "sort"

// Proc is one placeable procedure.
type Proc struct {
	// Key is a unique, stable identity (the procedure name); all
	// tie-breaking uses it.
	Key string
	// Weight is the procedure's dynamic hotness (its total block-entry
	// count). Zero means never executed.
	Weight uint64
}

// Edge is one directed call-graph edge between procs, as indices into the
// Order input slice.
type Edge struct {
	From, To int
	Weight   uint64
}

// Kind classifies how a procedure was placed.
type Kind uint8

const (
	// Cold: never executed (and on no hot edge); kept at the end in the
	// original order.
	Cold Kind = iota
	// Hot: executed, but on no merged edge — placed alone by weight.
	Hot
	// Chained: merged into a multi-procedure chain along hot call edges.
	Chained
)

// String names the placement kind.
func (k Kind) String() string {
	switch k {
	case Cold:
		return "cold"
	case Hot:
		return "hot"
	case Chained:
		return "chained"
	}
	return "?"
}

// Placement is the result of Order.
type Placement struct {
	// Order is a permutation of the input indices: Order[0] is placed first.
	Order []int
	// Kind classifies each input index's placement.
	Kind []Kind
	// Chain gives each input index's chain ordinal (in placement order) for
	// Chained procedures, -1 otherwise.
	Chain []int
}

// pair is an undirected procedure pair with combined weight.
type pair struct {
	a, b   int // a, b ordered so key(a) <= key(b)
	weight uint64
}

// Order computes the Pettis–Hansen placement. Self-edges and zero-weight
// edges are ignored. Procs touched by a positive edge count as executed
// even if their own weight is zero (a defensive rule for synthetic
// profiles; real profiles cannot produce that combination).
func Order(procs []Proc, edges []Edge) Placement {
	n := len(procs)
	pl := Placement{
		Order: make([]int, 0, n),
		Kind:  make([]Kind, n),
		Chain: make([]int, n),
	}
	for i := range pl.Chain {
		pl.Chain[i] = -1
	}

	// Combine directed edges into undirected pair weights.
	type pkey [2]int
	combined := make(map[pkey]uint64)
	hot := make([]bool, n)
	for i, p := range procs {
		hot[i] = p.Weight > 0
	}
	for _, e := range edges {
		if e.Weight == 0 || e.From == e.To {
			continue
		}
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			continue
		}
		a, b := e.From, e.To
		if procs[b].Key < procs[a].Key {
			a, b = b, a
		}
		combined[pkey{a, b}] += e.Weight
		hot[e.From], hot[e.To] = true, true
	}
	pairs := make([]pair, 0, len(combined))
	for k, w := range combined {
		pairs = append(pairs, pair{a: k[0], b: k[1], weight: w})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].weight != pairs[j].weight {
			return pairs[i].weight > pairs[j].weight
		}
		if procs[pairs[i].a].Key != procs[pairs[j].a].Key {
			return procs[pairs[i].a].Key < procs[pairs[j].a].Key
		}
		return procs[pairs[i].b].Key < procs[pairs[j].b].Key
	})

	// Merge chains along the sorted pairs. Each hot procedure starts as a
	// singleton chain; merging orients the two chains so the pair's
	// procedures become adjacent when both are chain endpoints.
	chainOf := make([]int, n)
	chains := make(map[int][]int)
	for i := range procs {
		chainOf[i] = i
		if hot[i] {
			chains[i] = []int{i}
		}
	}
	reverse := func(c []int) {
		for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
			c[i], c[j] = c[j], c[i]
		}
	}
	for _, pr := range pairs {
		ca, cb := chainOf[pr.a], chainOf[pr.b]
		if ca == cb {
			continue
		}
		A, B := chains[ca], chains[cb]
		// Orient so pr.a sits at A's tail and pr.b at B's head, when both
		// are endpoints; interior members just concatenate the chains.
		switch {
		case A[len(A)-1] == pr.a:
			// already good
		case A[0] == pr.a:
			reverse(A)
		}
		switch {
		case B[0] == pr.b:
			// already good
		case B[len(B)-1] == pr.b:
			reverse(B)
		}
		merged := append(A, B...)
		delete(chains, cb)
		chains[ca] = merged
		for _, p := range B {
			chainOf[p] = ca
		}
	}

	// Collect chains, order them by total weight (ties by smallest member
	// key), and emit.
	type chainInfo struct {
		members []int
		weight  uint64
		minKey  string
	}
	var out []chainInfo
	for _, members := range chains {
		ci := chainInfo{members: members, minKey: procs[members[0]].Key}
		for _, p := range members {
			ci.weight += procs[p].Weight
			if procs[p].Key < ci.minKey {
				ci.minKey = procs[p].Key
			}
		}
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].weight != out[j].weight {
			return out[i].weight > out[j].weight
		}
		return out[i].minKey < out[j].minKey
	})
	for ci, c := range out {
		for _, p := range c.members {
			pl.Order = append(pl.Order, p)
			if len(c.members) > 1 {
				pl.Kind[p] = Chained
				pl.Chain[p] = ci
			} else {
				pl.Kind[p] = Hot
			}
		}
	}
	for i := range procs {
		if !hot[i] {
			pl.Order = append(pl.Order, i)
			pl.Kind[i] = Cold
		}
	}
	return pl
}
