package spec

import "repro/internal/tcc"

// Floating-point benchmarks, part 1: alvinn, ear, ora, tomcatv, swm256.

// alvinn models neural-net training: matrix-vector products with a sigmoid
// through the library dexp, plus weight updates.
func alvinn() Benchmark {
	return Benchmark{
		Name:      "alvinn",
		Character: "FP; matrix-vector products and sigmoid activations (library dexp)",
		Modules: []tcc.Source{
			src("alv_net", `
// 32-16-8 network, weights flattened.
double w1[512];
double w2[128];
double hidden[16];
double output[8];

long net_init(long seed) {
	double v = 0.01;
	long i;
	for (i = 0; i < 512; i = i + 1) {
		w1[i] = v;
		v = v + 0.003;
		if (v > 0.5) { v = v - 0.49; }
	}
	for (i = 0; i < 128; i = i + 1) {
		w2[i] = 0.1 + 0.002 * i;
	}
	return 0;
}

double sigmoid(double x) {
	return 1.0 / (1.0 + dexp(-x));
}

long forward(double* in) {
	long h;
	for (h = 0; h < 16; h = h + 1) {
		double s = 0.0;
		long i;
		for (i = 0; i < 32; i = i + 1) {
			s = s + w1[h * 32 + i] * in[i];
		}
		hidden[h] = sigmoid(s);
	}
	long o;
	for (o = 0; o < 8; o = o + 1) {
		double s = 0.0;
		long j;
		for (j = 0; j < 16; j = j + 1) {
			s = s + w2[o * 16 + j] * hidden[j];
		}
		output[o] = sigmoid(s);
	}
	return 0;
}
`),
			src("alv_train", `
extern double w1;
extern double w2;
extern double hidden;
extern double output;
long forward(double* in);

double rate = 0.05;

long backward(double* in, double* want) {
	double* w2v = &w2;
	double* w1v = &w1;
	double* hid = &hidden;
	double* out = &output;
	long o;
	for (o = 0; o < 8; o = o + 1) {
		double err = (want[o] - out[o]) * out[o] * (1.0 - out[o]);
		long j;
		for (j = 0; j < 16; j = j + 1) {
			w2v[o * 16 + j] = w2v[o * 16 + j] + rate * err * hid[j];
		}
	}
	long h;
	for (h = 0; h < 16; h = h + 1) {
		double g = hid[h] * (1.0 - hid[h]) * 0.01;
		long i;
		for (i = 0; i < 32; i = i + 1) {
			w1v[h * 32 + i] = w1v[h * 32 + i] + rate * g * in[i];
		}
	}
	return 0;
}
`),
			src("alv_main", `
long net_init(long seed);
long forward(double* in);
long backward(double* in, double* want);
extern double output;

double input[32];
double target[8];

long main() {
	net_init(7);
	long i;
	for (i = 0; i < 32; i = i + 1) { input[i] = dsin(0.2 * i); }
	for (i = 0; i < 8; i = i + 1) { target[i] = 0.25 + 0.05 * i; }
	long epoch;
	for (epoch = 0; epoch < 220; epoch = epoch + 1) {
		forward(input);
		backward(input, target);
		input[epoch & 31] = input[epoch & 31] * 0.999 + 0.001;
	}
	forward(input);
	double* out = &output;
	double s = 0.0;
	for (i = 0; i < 8; i = i + 1) { s = s + out[i]; }
	print_fixed(s);
	return 0;
}
`),
		},
	}
}

// ear models the inner-ear filter cascade: second-order sections over a
// generated signal.
func ear() Benchmark {
	return Benchmark{
		Name:      "ear",
		Character: "FP; a cascade of second-order filters over a generated signal",
		Modules: []tcc.Source{
			src("ear_filt", `
// 16 second-order sections; coefficient and state arrays.
double b0[16];
double b1[16];
double b2[16];
double a1[16];
double a2[16];
double z1[16];
double z2[16];

long filt_init() {
	long s;
	for (s = 0; s < 16; s = s + 1) {
		double f = 0.02 + 0.01 * s;
		b0[s] = 1.05 - f;
		b1[s] = 0.1 - f * 0.5;
		b2[s] = 0.05;
		a1[s] = 0.2 - f;
		a2[s] = 0.05 + f * 0.2;
		z1[s] = 0.0;
		z2[s] = 0.0;
	}
	return 0;
}

// cascade processes one sample through all sections (transposed direct II).
double cascade(double x) {
	long s;
	for (s = 0; s < 16; s = s + 1) {
		double y = b0[s] * x + z1[s];
		z1[s] = b1[s] * x - a1[s] * y + z2[s];
		z2[s] = b2[s] * x - a2[s] * y;
		x = y;
	}
	return x;
}
`),
			src("ear_hair", `
// Hair-cell stage: rectification and adaptive gain.
double gain = 1.0;

double haircell(double y) {
	if (y < 0.0) { y = -y * 0.25; }
	gain = gain * 0.9995 + 0.0005;
	return y * gain;
}
`),
			src("ear_main", `
long filt_init();
double cascade(double x);
double haircell(double y);

long main() {
	filt_init();
	double acc = 0.0;
	long n;
	for (n = 0; n < 6000; n = n + 1) {
		double t = 0.001 * n;
		double x = dsin(37.0 * t) + 0.5 * dsin(91.0 * t);
		double y = haircell(cascade(x));
		acc = acc + y * y;
	}
	print_fixed(acc / 6000.0);
	return 0;
}
`),
		},
	}
}

// ora models ray tracing through an optical system: sphere intersections
// dominated by library dsqrt.
func ora() Benchmark {
	return Benchmark{
		Name:      "ora",
		Character: "FP; ray-surface intersections dominated by dsqrt",
		Modules: []tcc.Source{
			src("ora_surf", `
// Surfaces: concentric spheres, radius and curvature per element.
double radius[8];
double curv[8];

long surf_init() {
	long i;
	for (i = 0; i < 8; i = i + 1) {
		radius[i] = 4.0 + 1.5 * i;
		curv[i] = 1.0 / radius[i];
	}
	return 0;
}

// intersect returns the ray parameter of the hit with sphere i, for a ray
// from (x,y) with direction (dx,dy); -1 if it misses.
double intersect(double x, double y, double dx, double dy, long i) {
	double b = x * dx + y * dy;
	double c = x * x + y * y - radius[i] * radius[i];
	double disc = b * b - c;
	if (disc < 0.0) { return -1.0; }
	double root = dsqrt(disc);
	double t = -b - root;
	if (t < 0.0) { t = -b + root; }
	return t;
}
`),
			src("ora_trace", `
double intersect(double x, double y, double dx, double dy, long i);
extern double curv;

// trace pushes a ray through all 8 surfaces, refracting slightly at each.
double trace(double x, double y, double angle) {
	double* cv = &curv;
	double dx = dcos(angle);
	double dy = dsin(angle);
	long i;
	for (i = 0; i < 8; i = i + 1) {
		double t = intersect(x, y, dx, dy, i);
		if (t < 0.0) { return -1.0; }
		x = x + t * dx;
		y = y + t * dy;
		double bend = cv[i] * 0.05;
		double ndx = dx - bend * x * 0.1;
		double ndy = dy - bend * y * 0.1;
		double norm = dsqrt(ndx * ndx + ndy * ndy);
		dx = ndx / norm;
		dy = ndy / norm;
	}
	return x * x + y * y;
}
`),
			src("ora_main", `
long surf_init();
double trace(double x, double y, double angle);

long main() {
	surf_init();
	double acc = 0.0;
	long hits = 0;
	long r;
	for (r = 0; r < 1500; r = r + 1) {
		double a = 0.0003 * r;
		double v = trace(0.1, 0.05 * (r & 7), a);
		if (v >= 0.0) {
			acc = acc + v;
			hits = hits + 1;
		}
	}
	print(hits);
	print_fixed(acc / 1000.0);
	return 0;
}
`),
		},
	}
}

// tomcatv models vectorized mesh generation: relaxation sweeps over 2D
// coordinate arrays with residual tracking.
func tomcatv() Benchmark {
	return Benchmark{
		Name:      "tomcatv",
		Character: "FP; 2D mesh relaxation sweeps (Fortran-style array code)",
		Modules: []tcc.Source{
			src("tom_grid", `
// 64x64 mesh coordinates, flattened row-major.
double xg[4096];
double yg[4096];

long grid_setup() {
	long i;
	for (i = 0; i < 64; i = i + 1) {
		long j;
		for (j = 0; j < 64; j = j + 1) {
			double fi = i;
			double fj = j;
			xg[i * 64 + j] = fj + 0.08 * dsin(0.21 * fi);
			yg[i * 64 + j] = fi + 0.08 * dsin(0.17 * fj);
		}
	}
	return 0;
}
`),
			src("tom_relax", `
extern double xg;
extern double yg;

double rx = 0.0;
double ry = 0.0;

// relax performs one Jacobi-ish sweep; returns the max residual.
double relax() {
	double* x = &xg;
	double* y = &yg;
	rx = 0.0;
	ry = 0.0;
	long i;
	for (i = 1; i < 63; i = i + 1) {
		long j;
		for (j = 1; j < 63; j = j + 1) {
			long c = i * 64 + j;
			double nx = 0.25 * (x[c - 1] + x[c + 1] + x[c - 64] + x[c + 64]);
			double ny = 0.25 * (y[c - 1] + y[c + 1] + y[c - 64] + y[c + 64]);
			double dx = nx - x[c];
			double dy = ny - y[c];
			if (dabs(dx) > rx) { rx = dabs(dx); }
			if (dabs(dy) > ry) { ry = dabs(dy); }
			x[c] = x[c] + 0.9 * dx;
			y[c] = y[c] + 0.9 * dy;
		}
	}
	if (rx > ry) { return rx; }
	return ry;
}
`),
			src("tom_main", `
long grid_setup();
double relax();
extern double xg;
extern double yg;

long main() {
	grid_setup();
	double res = 1.0;
	long iter = 0;
	while (iter < 30 && res > 0.000001) {
		res = relax();
		iter = iter + 1;
	}
	double* x = &xg;
	double* y = &yg;
	print(iter);
	print_fixed(res * 1000.0);
	print_fixed(ddot(x, y, 4096) / 100000.0);
	return 0;
}
`),
		},
	}
}

// swm256 models the shallow-water equations: stencil updates of height and
// velocity fields with periodic halo wraps.
func swm256() Benchmark {
	return Benchmark{
		Name:      "swm256",
		Character: "FP; shallow-water stencils over height/velocity grids",
		Modules: []tcc.Source{
			src("swm_state", `
// 64x64 grids: height, u-velocity, v-velocity (and next-step copies).
double hf[4096];
double uf[4096];
double vf[4096];
double hn[4096];

long state_init() {
	long i;
	for (i = 0; i < 64; i = i + 1) {
		long j;
		for (j = 0; j < 64; j = j + 1) {
			long c = i * 64 + j;
			double di = i - 32;
			double dj = j - 32;
			hf[c] = 100.0 + dexp(-(di * di + dj * dj) * 0.01);
			uf[c] = 0.1 * dsin(0.1 * i);
			vf[c] = 0.1 * dcos(0.1 * j);
			hn[c] = 0.0;
		}
	}
	return 0;
}
`),
			src("swm_step", `
extern double hf;
extern double uf;
extern double vf;
extern double hn;

double dt = 0.02;

// step advances height by divergence of flux; velocities relax toward the
// height gradient.
long step() {
	double* h = &hf;
	double* u = &uf;
	double* v = &vf;
	double* nh = &hn;
	long i;
	for (i = 1; i < 63; i = i + 1) {
		long j;
		for (j = 1; j < 63; j = j + 1) {
			long c = i * 64 + j;
			double div = (u[c + 1] - u[c - 1]) + (v[c + 64] - v[c - 64]);
			nh[c] = h[c] - dt * 0.5 * div * h[c];
		}
	}
	for (i = 1; i < 63; i = i + 1) {
		long j;
		for (j = 1; j < 63; j = j + 1) {
			long c = i * 64 + j;
			u[c] = u[c] - dt * (nh[c + 1] - nh[c - 1]) * 0.05;
			v[c] = v[c] - dt * (nh[c + 64] - nh[c - 64]) * 0.05;
			h[c] = nh[c];
		}
	}
	return 0;
}
`),
			src("swm_main", `
long state_init();
long step();
extern double hf;
extern double uf;

long main() {
	state_init();
	long t;
	for (t = 0; t < 25; t = t + 1) {
		step();
	}
	double* h = &hf;
	double* u = &uf;
	double hsum = 0.0;
	double usum = 0.0;
	long i;
	for (i = 0; i < 4096; i = i + 1) {
		hsum = hsum + h[i];
		usum = usum + u[i] * u[i];
	}
	print_fixed(hsum / 4096.0);
	print_fixed(usum);
	return 0;
}
`),
		},
	}
}
