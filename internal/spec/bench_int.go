package spec

import "repro/internal/tcc"

// Integer benchmarks: compress, eqntott, espresso, li, sc.

// compress models LZW compression: a rolling synthetic input stream, an
// open-addressed hash dictionary, and bit-width accounting.
func compress() Benchmark {
	return Benchmark{
		Name:      "compress",
		Character: "integer; hash-table probes and bit packing over a synthetic stream",
		Modules: []tcc.Source{
			src("cmp_io", `
// Synthetic input stream and output-bit accounting.
static long state = 0;

long in_reset(long seed) {
	state = seed;
	return 0;
}

long in_byte() {
	state = state * 1103515245 + 12345;
	return (state >> 16) & 255;
}

long outbits = 0;

long out_code(long code, long width) {
	outbits = outbits + width;
	return code;
}
`),
			src("cmp_hash", `
long htab[8192];
long codetab[8192];

long hash_clear() {
	long i;
	for (i = 0; i < 8192; i = i + 1) {
		htab[i] = -1;
		codetab[i] = 0;
	}
	return 0;
}

// hash_find probes for key; returns the code or -(slot)-1 when absent.
long hash_find(long key) {
	long h = (key * 40503) & 8191;
	long probes = 0;
	while (probes < 8192) {
		if (htab[h] == key) { return codetab[h]; }
		if (htab[h] == -1) { return -h - 1; }
		h = (h + 1) & 8191;
		probes = probes + 1;
	}
	return -1;
}

long hash_insert(long slot, long key, long code) {
	htab[slot] = key;
	codetab[slot] = code;
	return code;
}
`),
			src("cmp_main", `
long in_reset(long seed);
long in_byte();
long out_code(long code, long width);
long hash_clear();
long hash_find(long key);
long hash_insert(long slot, long key, long code);
extern long outbits;

long nextcode = 0;
long width = 9;

static long widen(long code) {
	if (code >= (1 << width) && width < 13) {
		width = width + 1;
	}
	return width;
}

long compress_block(long n) {
	long prefix = in_byte();
	long i;
	for (i = 1; i < n; i = i + 1) {
		long c = in_byte();
		long key = prefix * 256 + c;
		long found = hash_find(key);
		if (found >= 0) {
			prefix = found;
		} else {
			out_code(prefix, width);
			long slot = -(found + 1);
			if (nextcode < 4096) {
				hash_insert(slot, key, nextcode + 256);
				nextcode = nextcode + 1;
				widen(nextcode + 256);
			}
			prefix = c;
		}
	}
	out_code(prefix, width);
	return outbits;
}

long main() {
	long block;
	long check = 0;
	for (block = 0; block < 3; block = block + 1) {
		in_reset(block * 7919 + 17);
		hash_clear();
		nextcode = 0;
		width = 9;
		outbits = 0;
		check = check * 31 + compress_block(15000);
	}
	print(check);
	print(nextcode);
	return 0;
}
`),
		},
	}
}

// eqntott models truth-table generation: product terms as packed longs,
// sorted through the library quicksort with an indirect comparator.
func eqntott() Benchmark {
	return Benchmark{
		Name:      "eqntott",
		Character: "integer; dominated by sorting product terms via an indirect comparator",
		Modules: []tcc.Source{
			src("eqn_gen", `
// Generate packed product terms for a synthetic equation set.
long terms[16384];
long nterms = 0;

static long mix(long x) {
	x = x ^ (x >> 21);
	x = x * 2685821657736338717;
	x = x ^ (x >> 35);
	return x;
}

long gen_terms(long n, long seed) {
	long i;
	nterms = n;
	for (i = 0; i < n; i = i + 1) {
		long v = mix(i * 2862933555777941757 + seed);
		terms[i] = v & 65535;
	}
	return n;
}
`),
			src("eqn_cmp", `
// Term comparison: by ones-count, then value (a stand-in for eqntott's
// cmppt which orders product terms).
static long popcount16(long v) {
	long n = 0;
	while (v) {
		n = n + (v & 1);
		v = v >> 1;
	}
	return n;
}

long cmppt(long a, long b) {
	long ca = popcount16(a);
	long cb = popcount16(b);
	if (ca != cb) { return ca - cb; }
	return a - b;
}
`),
			src("eqn_main", `
extern long terms;
extern long nterms;
long gen_terms(long n, long seed);
long cmppt(long a, long b);

long dedup() {
	long* t = &terms;
	long out = 0;
	long i;
	for (i = 0; i < nterms; i = i + 1) {
		if (i == 0 || t[i] != t[i-1]) {
			t[out] = t[i];
			out = out + 1;
		}
	}
	return out;
}

long main() {
	long* t = &terms;
	long round;
	long check = 0;
	for (round = 0; round < 2; round = round + 1) {
		gen_terms(1200, round * 104729 + 1);
		qsort8(t, 0, nterms - 1, cmppt);
		if (issorted(t, nterms, cmppt) == 0) {
			print(-1);
			return 1;
		}
		long uniq = dedup();
		check = check * 37 + uniq + t[0] + t[uniq - 1];
	}
	print(check);
	return 0;
}
`),
		},
	}
}

// espresso models two-level logic minimization: cubes as bit-vector
// quadruples, with containment and intersection sweeps over a cover.
func espresso() Benchmark {
	return Benchmark{
		Name:      "espresso",
		Character: "integer; many small set-operation procedures over bit-vector cubes",
		Modules: []tcc.Source{
			src("esp_cube", `
// A cube is 4 consecutive longs in the cover array.
long cube_and(long* a, long* b, long* out) {
	out[0] = a[0] & b[0];
	out[1] = a[1] & b[1];
	out[2] = a[2] & b[2];
	out[3] = a[3] & b[3];
	return 0;
}

long cube_or(long* a, long* b, long* out) {
	out[0] = a[0] | b[0];
	out[1] = a[1] | b[1];
	out[2] = a[2] | b[2];
	out[3] = a[3] | b[3];
	return 0;
}

long cube_empty(long* a) {
	return (a[0] | a[1] | a[2] | a[3]) == 0;
}

long cube_subset(long* a, long* b) {
	// a subset of b?
	if ((a[0] & ~b[0]) != 0) { return 0; }
	if ((a[1] & ~b[1]) != 0) { return 0; }
	if ((a[2] & ~b[2]) != 0) { return 0; }
	if ((a[3] & ~b[3]) != 0) { return 0; }
	return 1;
}

static long popc(long v) {
	long n = 0;
	while (v) {
		v = v & (v - 1);
		n = n + 1;
	}
	return n;
}

long cube_count(long* a) {
	return popc(a[0]) + popc(a[1]) + popc(a[2]) + popc(a[3]);
}
`),
			src("esp_cover", `
long cube_and(long* a, long* b, long* out);
long cube_subset(long* a, long* b);
long cube_empty(long* a);
long cube_count(long* a);

long cover[2048];
long covered[512];
long ncubes = 0;

long gen_cover(long n, long seed) {
	long s = seed;
	long i;
	ncubes = n;
	for (i = 0; i < n * 4; i = i + 1) {
		s = s * 6364136223846793005 + 1442695040888963407;
		cover[i] = s >> 17;
	}
	for (i = 0; i < n; i = i + 1) { covered[i] = 0; }
	return n;
}

// irredundant marks cubes contained in another cube of the cover.
long irredundant() {
	long removed = 0;
	long i;
	for (i = 0; i < ncubes; i = i + 1) {
		if (covered[i]) { continue; }
		long j;
		for (j = 0; j < ncubes; j = j + 1) {
			if (i == j || covered[j]) { continue; }
			if (cube_subset(&cover[i * 4], &cover[j * 4])) {
				covered[i] = 1;
				removed = removed + 1;
				break;
			}
		}
	}
	return removed;
}

long sharpness() {
	long tmp[4];
	long total = 0;
	long i;
	for (i = 0; i + 1 < ncubes; i = i + 1) {
		cube_and(&cover[i * 4], &cover[(i + 1) * 4], tmp);
		if (!cube_empty(tmp)) {
			total = total + cube_count(tmp);
		}
	}
	return total;
}
`),
			src("esp_main", `
long gen_cover(long n, long seed);
long irredundant();
long sharpness();
extern long cover;
extern long ncubes;

long main() {
	long pass;
	long check = 0;
	for (pass = 0; pass < 4; pass = pass + 1) {
		gen_cover(320, pass * 31 + 5);
		long r = irredundant();
		long s = sharpness();
		check = check * 131 + r * 1000003 + s;
	}
	print(check);
	return 0;
}
`),
		},
	}
}

// li models a Lisp interpreter: cons cells in parallel arrays, a recursive
// evaluator, and indirect dispatch through procedure variables.
func li() Benchmark {
	return Benchmark{
		Name:      "li",
		Character: "integer; recursive interpreter with indirect operator dispatch",
		Modules: []tcc.Source{
			src("li_cell", `
// Cons cells: car/cdr/tag arrays with a bump allocator.
long car[32768];
long cdr[32768];
long tag[32768];
long freeptr = 0;

long cell_reset() {
	freeptr = 0;
	return 0;
}

// tags: 0 = number (car holds value), 1 = cons, 2 = op node (car = op id,
// cdr = arg list).
long mknum(long v) {
	long c = freeptr;
	freeptr = freeptr + 1;
	tag[c] = 0;
	car[c] = v;
	cdr[c] = -1;
	return c;
}

long mkcons(long a, long d) {
	long c = freeptr;
	freeptr = freeptr + 1;
	tag[c] = 1;
	car[c] = a;
	cdr[c] = d;
	return c;
}

long mkop(long opid, long args) {
	long c = freeptr;
	freeptr = freeptr + 1;
	tag[c] = 2;
	car[c] = opid;
	cdr[c] = args;
	return c;
}
`),
			src("li_ops", `
// Builtin operators, dispatched through procedure variables.
long op_add(long a, long b) { return a + b; }
long op_sub(long a, long b) { return a - b; }
long op_mul(long a, long b) { return a * (b & 1023); }
long op_max(long a, long b) {
	if (a > b) { return a; }
	return b;
}

fnptr optable0;
fnptr optable1;
fnptr optable2;
fnptr optable3;

long ops_init() {
	optable0 = op_add;
	optable1 = op_sub;
	optable2 = op_mul;
	optable3 = op_max;
	return 0;
}

long apply_op(long opid, long a, long b) {
	if (opid == 0) { return optable0(a, b); }
	if (opid == 1) { return optable1(a, b); }
	if (opid == 2) { return optable2(a, b); }
	return optable3(a, b);
}
`),
			src("li_eval", `
extern long car;
extern long cdr;
extern long tag;
long apply_op(long opid, long a, long b);

// eval reduces an expression tree to a number.
long eval(long c) {
	long* carv = &car;
	long* cdrv = &cdr;
	long* tagv = &tag;
	if (tagv[c] == 0) { return carv[c]; }
	if (tagv[c] == 2) {
		long args = cdrv[c];
		long acc = eval(carv[args]);
		args = cdrv[args];
		while (args != -1) {
			acc = apply_op(carv[c], acc, eval(carv[args]));
			args = cdrv[args];
		}
		return acc;
	}
	// plain cons: sum of both sides
	return eval(carv[c]) + eval(cdrv[c]);
}
`),
			src("li_main", `
long cell_reset();
long mknum(long v);
long mkcons(long a, long d);
long mkop(long opid, long args);
long ops_init();
long eval(long c);

// build a balanced op tree of the given depth.
static long build(long depth, long seed) {
	if (depth == 0) { return mknum(seed & 255); }
	long left = build(depth - 1, seed * 2 + 1);
	long right = build(depth - 1, seed * 3 + 7);
	long args = mkcons(left, mkcons(right, -1));
	return mkop(seed & 3, args);
}

long main() {
	ops_init();
	long round;
	long check = 0;
	for (round = 0; round < 10; round = round + 1) {
		cell_reset();
		long e = build(11, round + 1);
		check = check * 31 + eval(e);
	}
	print(check);
	return 0;
}
`),
		},
	}
}

// sc models a spreadsheet recalculation: a cell grid with formula codes,
// swept until values stabilize.
func sc() Benchmark {
	return Benchmark{
		Name:      "sc",
		Character: "integer; formula-driven grid recalculation with library lookups",
		Modules: []tcc.Source{
			src("sc_grid", `
// 64x64 grid, flattened. formula: 0 literal, 1 sum-left, 2 max-above,
// 3 avg of two neighbors.
long val[4096];
long formula[4096];

long grid_init(long seed) {
	long s = seed;
	long i;
	for (i = 0; i < 4096; i = i + 1) {
		s = s * 48271 % 2147483647;
		formula[i] = s & 3;
		val[i] = s & 1023;
		if ((i & 63) == 0) { formula[i] = 0; }
		if (i < 64) { formula[i] = 0; }
	}
	return 0;
}
`),
			src("sc_eval", `
extern long val;
extern long formula;

static long cell(long r, long c) { return r * 64 + c; }

long eval_cell(long r, long c) {
	long* v = &val;
	long* f = &formula;
	long idx = cell(r, c);
	long code = f[idx];
	if (code == 0) { return v[idx]; }
	if (code == 1) {
		long s = 0;
		long j;
		for (j = 0; j < c; j = j + 1) { s = s + v[cell(r, j)]; }
		return s & 65535;
	}
	if (code == 2) {
		long m = v[cell(r - 1, c)];
		if (v[idx] > m) { m = v[idx]; }
		return m;
	}
	return (v[cell(r - 1, c)] + v[cell(r, c - 1)]) / 2;
}

long sweep() {
	long* v = &val;
	long changed = 0;
	long r;
	for (r = 1; r < 64; r = r + 1) {
		long c;
		for (c = 1; c < 64; c = c + 1) {
			long nv = eval_cell(r, c);
			if (nv != v[cell(r, c)]) {
				v[cell(r, c)] = nv;
				changed = changed + 1;
			}
		}
	}
	return changed;
}
`),
			src("sc_main", `
long grid_init(long seed);
long sweep();
extern long val;

long main() {
	long round;
	long check = 0;
	for (round = 0; round < 2; round = round + 1) {
		grid_init(round * 12345 + 7);
		long sweeps = 0;
		while (sweeps < 8) {
			long ch = sweep();
			sweeps = sweeps + 1;
			if (ch == 0) { break; }
		}
		long* v = &val;
		check = check * 131 + print_checksum(v, 4096) + sweeps;
	}
	print(check & 262143);
	return 0;
}
`),
		},
	}
}
