package spec

import "repro/internal/tcc"

// Floating-point benchmarks, part 2: doduc, fpppp, hydro2d, su2cor, wave5,
// nasa7, mdljdp2, mdljsp2, spice.

// doduc models a Monte Carlo reactor simulation: branchy control over
// sizeable straight-line floating-point blocks.
func doduc() Benchmark {
	return Benchmark{
		Name:      "doduc",
		Character: "FP; Monte Carlo with large basic blocks and branchy physics cases",
		Modules: []tcc.Source{
			src("dod_rng", `
static long st = 424242;

long dseed(long s) {
	st = s;
	return 0;
}

double drand() {
	st = st * 6364136223846793005 + 1442695040888963407;
	long bitsv = (st >> 17) & 1048575;
	double r = bitsv;
	return r / 1048576.0;
}
`),
			src("dod_phys", `
double drand();

// Scattering step: one large straight-line FP block per regime.
double scatter(double e, double mu) {
	double a = e * 0.91 + 0.02;
	double b = mu * mu;
	double c = a * b + e * 0.003;
	double d = a - b * 0.25;
	double f = c * d + 0.5;
	double g = f * f - c * 0.125;
	double h = g * a + d * b;
	double p = h * 0.0625 + f * 0.25;
	double q = p * a - g * 0.03125;
	double r = q + h * c * 0.015625;
	double s = r * 0.99 + p * 0.01;
	double t = s - q * 0.002;
	double u = t * t * 0.001 + s;
	double v = u * a + r * b * 0.01;
	return v * 0.5 + t * 0.1;
}

double absorb(double e) {
	double a = 1.0 - e * 0.004;
	double b = a * a;
	double c = b * a;
	double d = c * b;
	double f = 0.3 * a + 0.2 * b + 0.1 * c + 0.05 * d;
	double g = f * (1.0 + e * 0.001);
	double h = g - f * f * 0.02;
	return h;
}

double fission(double e, double w) {
	double nu = 2.43 + e * 0.0001;
	double a = w * nu;
	double b = a * 0.9 + w * 0.1;
	double c = b - a * e * 0.00005;
	double d = c * c * 0.001;
	return c - d + 0.001;
}
`),
			src("dod_main", `
long dseed(long s);
double drand();
double scatter(double e, double mu);
double absorb(double e);
double fission(double e, double w);

long main() {
	dseed(99991);
	double pop = 0.0;
	double energy = 2.0;
	long histories = 0;
	long n;
	for (n = 0; n < 30000; n = n + 1) {
		double r = drand();
		double w = 1.0;
		if (r < 0.6) {
			energy = scatter(energy, 2.0 * drand() - 1.0);
			if (energy < 0.01 || energy > 50.0) { energy = 2.0; histories = histories + 1; }
		} else if (r < 0.9) {
			w = w * absorb(energy);
		} else {
			pop = pop + fission(energy, w);
			energy = 2.0;
			histories = histories + 1;
		}
		pop = pop * 0.99999 + w * 0.00001;
	}
	print(histories);
	print_fixed(pop);
	return 0;
}
`),
		},
	}
}

// fpppp models two-electron integral evaluation: very large straight-line
// basic blocks (the workload the paper singles out for superlinear
// scheduling cost).
func fpppp() Benchmark {
	return Benchmark{
		Name:      "fpppp",
		Character: "FP; enormous straight-line basic blocks of polynomial evaluation",
		Modules: []tcc.Source{
			src("fpp_kern", `
// One call evaluates a big unrolled integral kernel: a single basic block
// of ~190 FP operations.
double kernel(double x, double y, double z, double w) {
	double t01 = x * y; double t02 = z * w; double t03 = x * z;
	double t04 = y * w; double t05 = x * w; double t06 = y * z;
	double t07 = t01 * t02; double t08 = t03 * t04; double t09 = t05 * t06;
	double t10 = t01 + t02 * 0.5; double t11 = t03 + t04 * 0.25;
	double t12 = t05 + t06 * 0.125; double t13 = t07 - t08 * 0.1;
	double t14 = t09 * 0.2 + t13; double t15 = t10 * t11;
	double t16 = t12 * t14; double t17 = t15 + t16;
	double t18 = t17 * 0.9 - t07 * 0.01; double t19 = t18 * t10;
	double t20 = t19 + t11 * t12; double t21 = t20 * 0.77 + t13;
	double t22 = t21 * t21 * 0.001; double t23 = t21 - t22;
	double t24 = t23 * t14 + t17 * 0.2; double t25 = t24 * 0.5 + t18 * 0.1;
	double t26 = t25 * t01 - t02 * 0.003; double t27 = t26 + t25 * t03;
	double t28 = t27 * 0.25 + t24; double t29 = t28 * t05 * 0.01;
	double t30 = t28 + t29; double t31 = t30 * 0.8 + t26 * 0.05;
	double t32 = t31 - t27 * 0.002; double t33 = t32 * t10;
	double t34 = t33 + t31 * 0.1; double t35 = t34 * t11 * 0.03;
	double t36 = t34 - t35; double t37 = t36 * 0.99 + t32 * 0.001;
	double t38 = t37 * t12; double t39 = t38 + t36 * 0.2;
	double t40 = t39 * 0.5 - t37 * 0.01; double t41 = t40 * t13 * 0.004;
	double t42 = t40 + t41; double t43 = t42 * 0.93 + t39 * 0.02;
	double t44 = t43 - t38 * 0.005; double t45 = t44 * t14 * 0.006;
	double t46 = t44 + t45; double t47 = t46 * t15 * 0.0001;
	double t48 = t46 - t47; double t49 = t48 * 0.98 + t43 * 0.01;
	double t50 = t49 + t42 * 0.003;
	double u01 = t50 * x + t49 * 0.5; double u02 = u01 * y - t48 * 0.25;
	double u03 = u02 * z + t47; double u04 = u03 * w - t46 * 0.1;
	double u05 = u04 + u01 * u02 * 0.001; double u06 = u05 * 0.5 + u03 * 0.2;
	double u07 = u06 - u04 * 0.05; double u08 = u07 * t01 * 0.01;
	double u09 = u07 + u08; double u10 = u09 * 0.9 + u06 * 0.04;
	double u11 = u10 - u05 * 0.002; double u12 = u11 * t02 * 0.008;
	double u13 = u11 + u12; double u14 = u13 * 0.97 + u10 * 0.015;
	double u15 = u14 + u09 * 0.001; double u16 = u15 * t03 * 0.0025;
	double u17 = u15 - u16; double u18 = u17 * 0.97 + u14 * 0.02;
	double u19 = u18 + u13 * 0.004; double u20 = u19 * t04 * 0.0015;
	return u19 + u20 + t50 * 0.0001;
}
`),
			src("fpp_shell", `
double kernel(double x, double y, double z, double w);

// shell pairs the kernel over basis exponents; another sizable block per
// iteration.
double shell(double a, double b) {
	double s = 0.0;
	long i;
	for (i = 0; i < 6; i = i + 1) {
		double e = 0.3 + 0.17 * i;
		double k1 = kernel(a + e, b, a - e * 0.5, b + e * 0.25);
		double k2 = kernel(b + e * 0.3, a, b - e * 0.2, a + e * 0.1);
		double cross = k1 * k2 * 0.000001;
		s = s + k1 * 0.4 + k2 * 0.3 - cross;
	}
	return s;
}
`),
			src("fpp_main", `
double shell(double a, double b);

long main() {
	double total = 0.0;
	long p;
	for (p = 0; p < 900; p = p + 1) {
		double a = 0.8 + 0.001 * p;
		double b = 1.1 - 0.0005 * p;
		total = total + shell(a, b);
	}
	print_fixed(total / 1000000.0);
	return 0;
}
`),
		},
	}
}

// hydro2d models hydrodynamic conservation laws on a 2D grid.
func hydro2d() Benchmark {
	return Benchmark{
		Name:      "hydro2d",
		Character: "FP; Navier-Stokes-flavored conservation updates on a 2D grid",
		Modules: []tcc.Source{
			src("hyd_state", `
// 48x48 density/momentum grids.
double rho[2304];
double mx[2304];
double my[2304];

long hyd_init() {
	long i;
	for (i = 0; i < 48; i = i + 1) {
		long j;
		for (j = 0; j < 48; j = j + 1) {
			long c = i * 48 + j;
			rho[c] = 1.0;
			if (i > 16 && i < 32 && j > 16 && j < 32) { rho[c] = 2.0; }
			mx[c] = 0.01 * (j - 24);
			my[c] = 0.01 * (24 - i);
		}
	}
	return 0;
}
`),
			src("hyd_flux", `
extern double rho;
extern double mx;
extern double my;

double cs = 0.35;

// flux_sweep applies one conservative update along both axes.
long flux_sweep() {
	double* r = &rho;
	double* u = &mx;
	double* v = &my;
	long i;
	for (i = 1; i < 47; i = i + 1) {
		long j;
		for (j = 1; j < 47; j = j + 1) {
			long c = i * 48 + j;
			double pe = cs * cs * r[c];
			double fx = u[c + 1] - u[c - 1];
			double fy = v[c + 48] - v[c - 48];
			r[c] = r[c] - 0.02 * (fx + fy);
			if (r[c] < 0.1) { r[c] = 0.1; }
			u[c] = u[c] - 0.02 * pe * (r[c + 1] - r[c - 1]);
			v[c] = v[c] - 0.02 * pe * (r[c + 48] - r[c - 48]);
		}
	}
	return 0;
}
`),
			src("hyd_main", `
long hyd_init();
long flux_sweep();
extern double rho;

long main() {
	hyd_init();
	long t;
	for (t = 0; t < 50; t = t + 1) {
		flux_sweep();
	}
	double* r = &rho;
	double mass = 0.0;
	double peak = 0.0;
	long i;
	for (i = 0; i < 2304; i = i + 1) {
		mass = mass + r[i];
		if (r[i] > peak) { peak = r[i]; }
	}
	print_fixed(mass / 2304.0);
	print_fixed(peak);
	return 0;
}
`),
		},
	}
}

// su2cor models a quark-propagator lattice computation: vector operations
// over lattice sites, leaning on the library ddot.
func su2cor() Benchmark {
	return Benchmark{
		Name:      "su2cor",
		Character: "FP; lattice sweeps with library BLAS-style kernels (ddot/dscale)",
		Modules: []tcc.Source{
			src("su2_lat", `
// 512 sites x 4 components, flattened.
double phi[2048];
double chi[2048];
double links[2048];

long lat_init(long seed) {
	long i;
	double v = 0.001 * seed;
	for (i = 0; i < 2048; i = i + 1) {
		phi[i] = dsin(v + 0.01 * i) * 0.5;
		chi[i] = 0.0;
		links[i] = 0.9 + 0.1 * dcos(0.02 * i);
	}
	return 0;
}
`),
			src("su2_dirac", `
extern double phi;
extern double chi;
extern double links;

// apply_dirac: chi = D(phi), a nearest-neighbor stencil in the flattened
// site ordering with link weights.
long apply_dirac() {
	double* p = &phi;
	double* c = &chi;
	double* l = &links;
	long s;
	for (s = 4; s < 2044; s = s + 1) {
		c[s] = 1.8 * p[s] - l[s] * (p[s - 4] + p[s + 4]) * 0.45
			- l[s] * (p[s - 1] + p[s + 1]) * 0.05;
	}
	return 0;
}
`),
			src("su2_main", `
long lat_init(long seed);
long apply_dirac();
extern double phi;
extern double chi;

long main() {
	double* p = &phi;
	double* c = &chi;
	double corr = 0.0;
	long sweep;
	for (sweep = 0; sweep < 12; sweep = sweep + 1) {
		lat_init(sweep);
		apply_dirac();
		double n2 = ddot(c, c, 2048);
		double overlap = ddot(p, c, 2048);
		dscale(c, 2048, 1.0 / dsqrt(n2 + 0.000001));
		corr = corr + overlap / (n2 + 1.0);
	}
	print_fixed(corr);
	return 0;
}
`),
		},
	}
}

// wave5 models particle-in-cell plasma simulation: particle pushes against
// grid fields, plus a field relaxation.
func wave5() Benchmark {
	return Benchmark{
		Name:      "wave5",
		Character: "FP+integer; particle pushes with grid scatter/gather",
		Modules: []tcc.Source{
			src("wav_part", `
// 4096 particles: position and velocity.
double px[4096];
double pv[4096];

long part_init() {
	long i;
	for (i = 0; i < 4096; i = i + 1) {
		px[i] = 0.03125 * (i & 1023) + 0.011;
		pv[i] = 0.001 * dsin(0.07 * i);
	}
	return 0;
}
`),
			src("wav_field", `
// 128-cell field with charge accumulation.
double ef[128];
double qd[128];

long field_clear() {
	long i;
	for (i = 0; i < 128; i = i + 1) { qd[i] = 0.0; }
	return 0;
}

long deposit(long cell, double w) {
	qd[cell & 127] = qd[cell & 127] + w;
	return 0;
}

double field_at(long cell) {
	return ef[cell & 127];
}

long field_solve() {
	long i;
	for (i = 0; i < 128; i = i + 1) {
		long prev = (i + 127) & 127;
		long next = (i + 1) & 127;
		ef[i] = 0.98 * ef[i] + 0.01 * (qd[prev] - qd[next]);
	}
	return 0;
}
`),
			src("wav_main", `
long part_init();
long field_clear();
long deposit(long cell, double w);
double field_at(long cell);
long field_solve();
extern double px;
extern double pv;

long main() {
	part_init();
	long step;
	double ke = 0.0;
	double* x = &px;
	double* v = &pv;
	for (step = 0; step < 15; step = step + 1) {
		field_clear();
		long i;
		for (i = 0; i < 4096; i = i + 1) {
			long cell = x[i] * 4.0;
			deposit(cell, 0.25);
		}
		field_solve();
		ke = 0.0;
		for (i = 0; i < 4096; i = i + 1) {
			long cell = x[i] * 4.0;
			v[i] = v[i] + 0.01 * field_at(cell);
			x[i] = x[i] + v[i];
			if (x[i] < 0.0) { x[i] = x[i] + 32.0; }
			if (x[i] >= 32.0) { x[i] = x[i] - 32.0; }
			ke = ke + v[i] * v[i];
		}
	}
	print_fixed(ke);
	return 0;
}
`),
		},
	}
}

// nasa7 models the NAS kernel collection: matrix multiply, an FFT-like
// butterfly, Cholesky-flavored elimination, and a penta-diagonal solve.
func nasa7() Benchmark {
	return Benchmark{
		Name:      "nasa7",
		Character: "FP; a collection of dense-kernel loops (matmul, butterfly, solve)",
		Modules: []tcc.Source{
			src("nas_mm", `
// 24x24 matrix multiply, flattened.
double ma[576];
double mb[576];
double mc[576];

long mm_init() {
	long i;
	for (i = 0; i < 576; i = i + 1) {
		ma[i] = 0.001 * i;
		mb[i] = 0.002 * (576 - i);
		mc[i] = 0.0;
	}
	return 0;
}

double mm_run() {
	long i;
	for (i = 0; i < 24; i = i + 1) {
		long j;
		for (j = 0; j < 24; j = j + 1) {
			double s = 0.0;
			long k;
			for (k = 0; k < 24; k = k + 1) {
				s = s + ma[i * 24 + k] * mb[k * 24 + j];
			}
			mc[i * 24 + j] = s;
		}
	}
	return mc[0] + mc[575];
}
`),
			src("nas_fft", `
// Butterfly passes over a 512-point complex signal (re/im arrays).
double re[512];
double im[512];

long fft_init() {
	long i;
	for (i = 0; i < 512; i = i + 1) {
		re[i] = dsin(0.1 * i);
		im[i] = 0.0;
	}
	return 0;
}

double fft_passes() {
	long span = 1;
	while (span < 512) {
		double wr = dcos(3.14159265358979 / span);
		double wi = dsin(3.14159265358979 / span);
		long start;
		for (start = 0; start < 512; start = start + 2 * span) {
			long k;
			for (k = 0; k < span; k = k + 1) {
				long a = start + k;
				long b = a + span;
				double tr = wr * re[b] - wi * im[b];
				double ti = wr * im[b] + wi * re[b];
				re[b] = re[a] - tr;
				im[b] = im[a] - ti;
				re[a] = re[a] + tr;
				im[a] = im[a] + ti;
			}
		}
		span = span * 2;
	}
	return re[1] + im[1];
}
`),
			src("nas_chol", `
// Cholesky-flavored elimination on a 32x32 SPD-ish matrix.
double am[1024];

long chol_init() {
	long i;
	for (i = 0; i < 32; i = i + 1) {
		long j;
		for (j = 0; j < 32; j = j + 1) {
			am[i * 32 + j] = 0.01;
			if (i == j) { am[i * 32 + j] = 4.0 + 0.01 * i; }
		}
	}
	return 0;
}

double chol_run() {
	long k;
	for (k = 0; k < 32; k = k + 1) {
		double d = dsqrt(am[k * 32 + k]);
		am[k * 32 + k] = d;
		long i;
		for (i = k + 1; i < 32; i = i + 1) {
			am[i * 32 + k] = am[i * 32 + k] / d;
		}
		for (i = k + 1; i < 32; i = i + 1) {
			long j;
			for (j = k + 1; j <= i; j = j + 1) {
				am[i * 32 + j] = am[i * 32 + j] - am[i * 32 + k] * am[j * 32 + k];
			}
		}
	}
	return am[1023];
}
`),
			src("nas_main", `
long mm_init();
double mm_run();
long fft_init();
double fft_passes();
long chol_init();
double chol_run();

long main() {
	double acc = 0.0;
	long rep;
	for (rep = 0; rep < 10; rep = rep + 1) {
		mm_init();
		acc = acc + mm_run();
		fft_init();
		acc = acc + fft_passes();
		chol_init();
		acc = acc + chol_run();
	}
	print_fixed(acc);
	return 0;
}
`),
		},
	}
}

// mdljdp2 models double-precision molecular dynamics with an O(n^2)
// pairwise force computation.
func mdljdp2() Benchmark {
	return Benchmark{
		Name:      "mdljdp2",
		Character: "FP; pairwise Lennard-Jones forces with dsqrt distances",
		Modules: []tcc.Source{
			src("mdd_state", `
// 160 particles in 2D.
double qx[160];
double qy[160];
double fx[160];
double fy[160];

long md_init() {
	long i;
	for (i = 0; i < 160; i = i + 1) {
		qx[i] = (i & 15) * 1.1 + 0.05 * (i >> 4);
		qy[i] = (i >> 4) * 1.1;
		fx[i] = 0.0;
		fy[i] = 0.0;
	}
	return 0;
}
`),
			src("mdd_force", `
extern double qx;
extern double qy;
extern double fx;
extern double fy;

double cutoff = 3.0;

double forces() {
	double* x = &qx;
	double* y = &qy;
	double* gx = &fx;
	double* gy = &fy;
	double pot = 0.0;
	long i;
	for (i = 0; i < 160; i = i + 1) { gx[i] = 0.0; gy[i] = 0.0; }
	for (i = 0; i < 160; i = i + 1) {
		long j;
		for (j = i + 1; j < 160; j = j + 1) {
			double dx = x[i] - x[j];
			double dy = y[i] - y[j];
			double r2 = dx * dx + dy * dy;
			if (r2 < cutoff * cutoff) {
				double r = dsqrt(r2);
				double inv = 1.0 / (r2 * r2 * r2 + 0.001);
				double f = 24.0 * inv * (2.0 * inv - 1.0) / (r + 0.001);
				gx[i] = gx[i] + f * dx;
				gy[i] = gy[i] + f * dy;
				gx[j] = gx[j] - f * dx;
				gy[j] = gy[j] - f * dy;
				pot = pot + 4.0 * inv * (inv - 1.0);
			}
		}
	}
	return pot;
}
`),
			src("mdd_main", `
long md_init();
double forces();
extern double qx;
extern double qy;
extern double fx;
extern double fy;

long main() {
	md_init();
	double* x = &qx;
	double* y = &qy;
	double* gx = &fx;
	double* gy = &fy;
	double pot = 0.0;
	long step;
	for (step = 0; step < 8; step = step + 1) {
		pot = forces();
		long i;
		for (i = 0; i < 160; i = i + 1) {
			x[i] = x[i] + 0.0001 * gx[i];
			y[i] = y[i] + 0.0001 * gy[i];
		}
	}
	print_fixed(pot / 100.0);
	return 0;
}
`),
		},
	}
}

// mdljsp2 is the "single-precision" twin: same physics shape, but a
// neighbor-list structure that makes the inner loops integer-heavier.
func mdljsp2() Benchmark {
	return Benchmark{
		Name:      "mdljsp2",
		Character: "FP; molecular dynamics with an explicit neighbor list",
		Modules: []tcc.Source{
			src("mds_state", `
double sx[160];
double sy[160];
long nbr[8192];
long nbrcount[160];

long mds_init() {
	long i;
	for (i = 0; i < 160; i = i + 1) {
		sx[i] = (i & 15) * 1.05;
		sy[i] = (i >> 4) * 1.05 + 0.03 * (i & 3);
		nbrcount[i] = 0;
	}
	return 0;
}

// rebuild the neighbor list with a distance filter.
long build_nbrs() {
	long total = 0;
	long i;
	for (i = 0; i < 160; i = i + 1) {
		long cnt = 0;
		long j;
		for (j = 0; j < 160; j = j + 1) {
			if (i == j) { continue; }
			double dx = sx[i] - sx[j];
			double dy = sy[i] - sy[j];
			if (dx * dx + dy * dy < 6.25 && cnt < 50) {
				nbr[i * 50 + cnt] = j;
				cnt = cnt + 1;
			}
		}
		nbrcount[i] = cnt;
		total = total + cnt;
	}
	return total;
}
`),
			src("mds_force", `
extern double sx;
extern double sy;
extern long nbr;
extern long nbrcount;

double kick(long i) {
	double* x = &sx;
	double* y = &sy;
	long* nb = &nbr;
	long* nc = &nbrcount;
	double ax = 0.0;
	double ay = 0.0;
	long k;
	for (k = 0; k < nc[i]; k = k + 1) {
		long j = nb[i * 50 + k];
		double dx = x[i] - x[j];
		double dy = y[i] - y[j];
		double r2 = dx * dx + dy * dy + 0.001;
		double inv = 1.0 / r2;
		double f = inv * inv - 0.5 * inv;
		ax = ax + f * dx;
		ay = ay + f * dy;
	}
	x[i] = x[i] + 0.0001 * ax;
	y[i] = y[i] + 0.0001 * ay;
	return ax * ax + ay * ay;
}
`),
			src("mds_main", `
long mds_init();
long build_nbrs();
double kick(long i);

long main() {
	mds_init();
	double acc = 0.0;
	long pairs = 0;
	long step;
	for (step = 0; step < 12; step = step + 1) {
		if (step % 4 == 0) { pairs = build_nbrs(); }
		long i;
		for (i = 0; i < 160; i = i + 1) {
			acc = acc + kick(i);
		}
	}
	print(pairs);
	print_fixed(acc);
	return 0;
}
`),
		},
	}
}

// spice models circuit simulation: device-model evaluation through library
// dexp, a sparse solve, and heavy use of precompiled library routines —
// reproducing the paper's observation that in spice half the calls are from
// one library routine to another.
func spice() Benchmark {
	return Benchmark{
		Name:      "spice",
		Character: "FP; device-model evaluation and sparse solve, dominated by library calls",
		Modules: []tcc.Source{
			src("spi_dev", `
// Diode/transistor model evaluation: exp-heavy library math.
double vt = 0.02585;

double diode_i(double v) {
	double x = v / vt;
	if (x > 20.0) { x = 20.0; }
	if (x < -20.0) { x = -20.0; }
	return 0.000001 * (dexp(x) - 1.0);
}

double diode_g(double v) {
	double x = v / vt;
	if (x > 20.0) { x = 20.0; }
	if (x < -20.0) { x = -20.0; }
	return 0.000001 * dexp(x) / vt;
}
`),
			src("spi_mat", `
// Tridiagonal system: 96 nodes, Thomas-algorithm solve using library
// memcpy8-style staging.
double diag[96];
double lower[96];
double upper[96];
double rhs[96];
double volt[96];

long mat_clear() {
	long i;
	for (i = 0; i < 96; i = i + 1) {
		diag[i] = 0.001;
		lower[i] = 0.0;
		upper[i] = 0.0;
		rhs[i] = 0.0;
	}
	return 0;
}

long stamp(long n, double g, double cur) {
	diag[n] = diag[n] + g;
	if (n > 0) {
		lower[n] = lower[n] - g * 0.5;
		upper[n - 1] = upper[n - 1] - g * 0.5;
	}
	rhs[n] = rhs[n] + cur;
	return 0;
}

long solve() {
	double cp[96];
	double dp[96];
	cp[0] = upper[0] / diag[0];
	dp[0] = rhs[0] / diag[0];
	long i;
	for (i = 1; i < 96; i = i + 1) {
		double m = diag[i] - lower[i] * cp[i - 1];
		cp[i] = upper[i] / m;
		dp[i] = (rhs[i] - lower[i] * dp[i - 1]) / m;
	}
	volt[95] = dp[95];
	for (i = 94; i >= 0; i = i - 1) {
		volt[i] = dp[i] - cp[i] * volt[i + 1];
	}
	return 0;
}
`),
			src("spi_main", `
double diode_i(double v);
double diode_g(double v);
long mat_clear();
long stamp(long n, double g, double cur);
long solve();
extern double volt;
extern double rhs;

long main() {
	double* v = &volt;
	long i;
	for (i = 0; i < 96; i = i + 1) { v[i] = 0.1; }
	long iter;
	double delta = 1.0;
	for (iter = 0; iter < 40; iter = iter + 1) {
		mat_clear();
		for (i = 0; i < 96; i = i + 1) {
			double g = diode_g(v[i]) + 0.01;
			double cur = 0.001 - diode_i(v[i]);
			stamp(i, g, cur);
		}
		long prevbits = v[48] * 1000000.0;
		solve();
		long newbits = v[48] * 1000000.0;
		delta = labs(newbits - prevbits);
		if (delta < 1.0) { break; }
	}
	print(iter);
	print_fixed(v[0] * 1000.0);
	print_fixed(v[95] * 1000.0);
	double* r = &rhs;
	print_fixed(ddot(r, v, 96) * 1000.0);
	return 0;
}
`),
		},
	}
}
