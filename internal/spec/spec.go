// Package spec provides the reproduction's benchmark suite: nineteen
// synthetic programs named and shaped after the SPEC92 set the paper
// measures (gcc excluded there too, so nineteen). Each benchmark is a
// multi-module Tiny C program whose structure models the character of its
// namesake: fpppp and doduc carry very large basic blocks, li and sc are
// call-heavy with indirect dispatch, spice leans on the precompiled library
// so heavily that library-to-library calls dominate, the Fortran-flavored
// FP codes (tomcatv, swm256, hydro2d, su2cor, nasa7, wave5) are
// loop-and-array bound, and so on.
//
// Every program prints deterministic checksums, so any two builds of the
// same benchmark — compile-each vs compile-all, optimized or not — must
// produce identical output; the harness and the property tests rely on it.
package spec

import "repro/internal/tcc"

// Benchmark is one program of the suite.
type Benchmark struct {
	Name string
	// Modules are the separately compiled units (compile-each mode builds
	// one object per module; compile-all compiles them as a single unit).
	Modules []tcc.Source
	// Character is a one-line description of the workload shape.
	Character string
}

// All returns the nineteen benchmarks in the paper's listing order.
func All() []Benchmark {
	return []Benchmark{
		alvinn(), compress(), doduc(), ear(), eqntott(),
		espresso(), fpppp(), hydro2d(), li(), mdljdp2(),
		mdljsp2(), nasa7(), ora(), sc(), spice(),
		su2cor(), swm256(), tomcatv(), wave5(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

func src(name, text string) tcc.Source { return tcc.Source{Name: name, Text: text} }
