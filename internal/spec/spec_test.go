package spec

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

// compileEach builds one object per module (the paper's compile-each mode).
func compileEach(t *testing.T, b Benchmark) []*objfile.Object {
	t.Helper()
	var objs []*objfile.Object
	for _, m := range b.Modules {
		obj, err := tcc.Compile(m.Name, []tcc.Source{m}, tcc.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: compile %s: %v", b.Name, m.Name, err)
		}
		objs = append(objs, obj)
	}
	return objs
}

// compileAll builds all modules as one interprocedurally optimized unit.
func compileAll(t *testing.T, b Benchmark) []*objfile.Object {
	t.Helper()
	obj, err := tcc.Compile(b.Name+"_all", b.Modules, tcc.InterprocOptions())
	if err != nil {
		t.Fatalf("%s: compile-all: %v", b.Name, err)
	}
	return []*objfile.Object{obj}
}

func withLib(t *testing.T, objs []*objfile.Object) []*objfile.Object {
	t.Helper()
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	return append(objs, lib...)
}

func TestAllBenchmarksRunIdenticallyEverywhere(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			eachObjs := withLib(t, compileEach(t, b))
			baseIm, err := link.Link(eachObjs)
			if err != nil {
				t.Fatalf("link: %v", err)
			}
			want, err := sim.Run(baseIm, sim.Config{MaxInstructions: 200_000_000})
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			if want.Exit != 0 {
				t.Fatalf("baseline exit = %d, output %v", want.Exit, want.Output)
			}
			if len(want.Output) == 0 {
				t.Fatal("benchmark produced no output")
			}

			check := func(label string, im *objfile.Image) {
				got, err := sim.Run(im, sim.Config{MaxInstructions: 200_000_000})
				if err != nil {
					t.Fatalf("%s run: %v", label, err)
				}
				if got.Exit != want.Exit || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
					t.Errorf("%s: output %v exit %d, want %v exit %d",
						label, got.Output, got.Exit, want.Output, want.Exit)
				}
			}

			// compile-all must agree.
			allIm, err := link.Link(withLib(t, compileAll(t, b)))
			if err != nil {
				t.Fatalf("link compile-all: %v", err)
			}
			check("compile-all", allIm)

			// Every OM level on both compilation modes must agree.
			for _, mode := range []string{"each", "all"} {
				for _, cfg := range []struct {
					Level    om.Level
					Schedule bool
				}{
					{Level: om.LevelSimple},
					{Level: om.LevelFull},
					{Level: om.LevelFull, Schedule: true},
				} {
					var objs []*objfile.Object
					if mode == "each" {
						objs = withLib(t, compileEach(t, b))
					} else {
						objs = withLib(t, compileAll(t, b))
					}
					p, err := link.Merge(objs)
					if err != nil {
						t.Fatalf("merge (%s): %v", mode, err)
					}
					res, err := om.Run(context.Background(), p,
						om.WithLevel(cfg.Level), om.WithSchedule(cfg.Schedule))
					if err != nil {
						t.Fatalf("om %v (%s): %v", cfg.Level, mode, err)
					}
					check(fmt.Sprintf("%v/%s/sched=%v", cfg.Level, mode, cfg.Schedule), res.Image)
				}
			}
		})
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, b := range All() {
		if names[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
		if len(b.Modules) < 3 {
			t.Errorf("%s has only %d modules; compile-each needs several", b.Name, len(b.Modules))
		}
		if b.Character == "" {
			t.Errorf("%s has no character description", b.Name)
		}
	}
	if len(names) != 19 {
		t.Errorf("suite has %d benchmarks, want 19", len(names))
	}
	if _, ok := ByName("spice"); !ok {
		t.Error("ByName(spice) failed")
	}
	if _, ok := ByName("gcc"); ok {
		t.Error("gcc should be absent (32-bit only, as in the paper)")
	}
}
