package verify

import (
	"fmt"

	"repro/internal/dataflow"
)

// CrossCheckStatic is the static column of the cross-check: the dynamic
// verdict document (translation validation of the decision journal against
// the image) and a static om-lint/v1 dataflow report over the same image
// must agree. The report must actually describe an image, must have
// evaluated at least one check site (a clean report is a proof, not the
// absence of output), and when every dynamic verdict is sound it must
// carry no error finding — a rewrite the validator proved correct cannot
// coexist with a static proof that the image's address calculation is
// broken. Info-severity findings (missed optimizations) are allowed; they
// are reports about optimality, not soundness.
func (d *Doc) CrossCheckStatic(rep *dataflow.Report) error {
	if err := d.Check(); err != nil {
		return err
	}
	if rep == nil {
		return fmt.Errorf("verify: no static report to cross-check")
	}
	if rep.Schema != dataflow.Schema {
		return fmt.Errorf("verify: static report schema %q, want %q", rep.Schema, dataflow.Schema)
	}
	if rep.Source != "image" {
		return fmt.Errorf("verify: static report describes %q, want an image", rep.Source)
	}
	if rep.Checked == 0 {
		return fmt.Errorf("verify: static report evaluated no check sites")
	}
	if d.Failed == 0 {
		if n := rep.Errors(); n > 0 {
			for _, f := range rep.Findings {
				if f.Severity == dataflow.SevError {
					return fmt.Errorf("verify: all %d dynamic verdicts sound but static analysis reports %d error(s); first: %s",
						d.Checked, n, f.String())
				}
			}
		}
	}
	return nil
}
