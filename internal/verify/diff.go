package verify

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/progen"
	"repro/internal/rtlib"
	"repro/internal/sim"
	"repro/internal/tcc"
)

// This file is the differential execution engine: randomized programs from
// progen run unoptimized (standard linker) and through every matrix cell,
// and the final architectural state must agree — exit value, output-trap
// stream, output bytes, and the final contents of every data symbol the
// two layouts share. Each optimized image is additionally translation-
// validated, so one generated program exercises both pillars at once.

// DiffOptions configures a differential run.
type DiffOptions struct {
	// Cases is the number of generated programs (default 20).
	Cases int
	// Seed offsets the progen seed sequence.
	Seed int64
	// MaxInstructions bounds each simulation (default 50M).
	MaxInstructions uint64
	// Cells is the option matrix to run each case through (default
	// QuickCells).
	Cells []Cell
	// Gen configures the program generator (zero value: progen defaults).
	Gen progen.Config
}

// Mismatch records one behavioral divergence between the unoptimized and
// an optimized build.
type Mismatch struct {
	Seed   int64  `json:"seed"`
	Cell   string `json:"cell"`
	Field  string `json:"field"`
	Detail string `json:"detail"`
}

// DiffReport summarizes a differential run.
type DiffReport struct {
	Cases      int        `json:"cases"`
	Runs       int        `json:"runs"`
	Checked    uint64     `json:"checked"`
	Mismatches []Mismatch `json:"mismatches,omitempty"`
}

// Err returns an error if any case diverged.
func (r *DiffReport) Err() error {
	if len(r.Mismatches) == 0 {
		return nil
	}
	m := r.Mismatches[0]
	return fmt.Errorf("verify: %d differential mismatches; first: seed %d cell %s %s: %s",
		len(r.Mismatches), m.Seed, m.Cell, m.Field, m.Detail)
}

// finalState is the observable outcome of one simulation.
type finalState struct {
	exit    int64
	output  []int64
	outB    []byte
	machine *sim.Machine
	image   *objfile.Image
}

func execute(im *objfile.Image, maxInst uint64) (*finalState, error) {
	m, err := sim.New(im, sim.Config{MaxInstructions: maxInst})
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	return &finalState{exit: res.Exit, output: res.Output, outB: res.OutBytes, machine: m, image: im}, nil
}

// dataSymbols returns the image's data symbols that are uniquely named (a
// multiply-defined name cannot be matched across layouts).
func dataSymbols(im *objfile.Image) map[string]objfile.ImageSymbol {
	count := make(map[string]int)
	for _, s := range im.Symbols {
		if s.Kind == objfile.SymData {
			count[s.Name]++
		}
	}
	out := make(map[string]objfile.ImageSymbol)
	for _, s := range im.Symbols {
		if s.Kind == objfile.SymData && count[s.Name] == 1 && s.Size > 0 {
			out[s.Name] = s
		}
	}
	return out
}

// compare diffs two final states, appending mismatches to the report.
func compare(r *DiffReport, seed int64, cell string, base, opt *finalState) {
	add := func(field, format string, args ...any) {
		r.Mismatches = append(r.Mismatches, Mismatch{
			Seed: seed, Cell: cell, Field: field, Detail: fmt.Sprintf(format, args...),
		})
	}
	if base.exit != opt.exit {
		add("exit", "%d != %d", opt.exit, base.exit)
	}
	if fmt.Sprint(base.output) != fmt.Sprint(opt.output) {
		add("output", "trap stream diverged: %v != %v", opt.output, base.output)
	}
	if !bytes.Equal(base.outB, opt.outB) {
		add("outbytes", "%d bytes != %d bytes", len(opt.outB), len(base.outB))
	}
	// Final memory: every uniquely-named data symbol both layouts share
	// must hold identical bytes. Generated programs keep addresses out of
	// globals, so a divergence here is an optimizer bug, not a relocation.
	baseSyms := dataSymbols(base.image)
	optSyms := dataSymbols(opt.image)
	for name, bs := range baseSyms {
		os, ok := optSyms[name]
		if !ok || os.Size != bs.Size {
			continue
		}
		bb, err1 := base.machine.ReadBytes(bs.Addr, int(bs.Size))
		ob, err2 := opt.machine.ReadBytes(os.Addr, int(os.Size))
		if err1 != nil || err2 != nil {
			continue
		}
		if !bytes.Equal(bb, ob) {
			add("memory", "data symbol %s (%d bytes) diverged", name, bs.Size)
		}
		r.Checked++
	}
}

// Differential generates opts.Cases random programs and runs each through
// the full pipeline: compile, baseline link + simulate, then every matrix
// cell (OM + translation validation + simulate), diffing the final state
// against the baseline. Translation-validation failures are reported as
// mismatches in field "verdict".
func Differential(ctx context.Context, opts DiffOptions) (*DiffReport, error) {
	if opts.Cases <= 0 {
		opts.Cases = 20
	}
	if opts.MaxInstructions == 0 {
		opts.MaxInstructions = 50_000_000
	}
	if opts.Cells == nil {
		opts.Cells = QuickCells()
	}
	if opts.Gen == (progen.Config{}) {
		opts.Gen = progen.DefaultConfig()
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		return nil, err
	}

	r := &DiffReport{Cases: opts.Cases}
	for i := 0; i < opts.Cases; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := opts.Seed + int64(i)
		srcs := progen.Generate(seed, opts.Gen)
		var objs []*objfile.Object
		for _, s := range srcs {
			obj, err := tcc.Compile(s.Name, []tcc.Source{s}, tcc.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("verify: seed %d compile %s: %w", seed, s.Name, err)
			}
			objs = append(objs, obj)
		}
		objs = append(objs, lib...)

		baseIm, err := link.Link(objs)
		if err != nil {
			return nil, fmt.Errorf("verify: seed %d link: %w", seed, err)
		}
		base, err := execute(baseIm, opts.MaxInstructions)
		if err != nil {
			return nil, fmt.Errorf("verify: seed %d baseline run: %w", seed, err)
		}
		r.Runs++

		for _, c := range opts.Cells {
			cr, err := RunCell(ctx, objs, c, nil)
			if err != nil {
				return nil, fmt.Errorf("verify: seed %d: %w", seed, err)
			}
			if cr.Doc.Failed > 0 {
				r.Mismatches = append(r.Mismatches, Mismatch{
					Seed: seed, Cell: c.Name(), Field: "verdict",
					Detail: cr.Doc.Err().Error(),
				})
			}
			r.Checked += cr.Doc.Checked
			opt, err := execute(cr.Image, opts.MaxInstructions)
			if err != nil {
				r.Mismatches = append(r.Mismatches, Mismatch{
					Seed: seed, Cell: c.Name(), Field: "run",
					Detail: err.Error(),
				})
				continue
			}
			r.Runs++
			compare(r, seed, c.Name(), base, opt)
		}
	}
	return r, nil
}
