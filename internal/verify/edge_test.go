package verify

import (
	"context"
	"testing"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/profile"
	"repro/internal/rtlib"
	"repro/internal/tcc"
)

// TestSharedLibCrossClusterGPReset pins the GP-flow edge the paper's §6
// carves out: calls into a dynamically-linked library cross GAT clusters, so
// the caller's GP-reset after the call must survive, and the validator's
// same-gat/diff-gat rules must prove both sides of the split.
func TestSharedLibCrossClusterGPReset(t *testing.T) {
	objs := fixtureObjects(t)
	r, err := RunCell(context.Background(), objs, Cell{Level: om.LevelFull}, nil,
		"libmath", "libutil")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Doc.Err(); err != nil {
		t.Fatalf("shared-lib image fails verification: %v", err)
	}
	if r.Doc.ByReason[om.ReasonResetKeptDiffGAT] == 0 {
		t.Errorf("no gpreset survived the cross-cluster split (ByReason: %v)", r.Doc.ByReason)
	}
	if r.Doc.ByReason[om.ReasonResetRemoved] == 0 {
		t.Errorf("no gpreset was removed inside a cluster (ByReason: %v)", r.Doc.ByReason)
	}
	if r.Doc.ByReason[om.ReasonCallKeptCrossReg] == 0 {
		t.Errorf("no cross-region call was kept indirect (ByReason: %v)", r.Doc.ByReason)
	}
	if len(r.Image.GATs) < 2 {
		t.Fatalf("expected split GATs, got %d", len(r.Image.GATs))
	}
	if err := r.Doc.CrossCheck(r.Journal); err != nil {
		t.Fatal(err)
	}
}

// TestIndirectJSRThroughGAT: an indirect call through a function pointer has
// no decodable callee, so it must stay a jsr at every level and the
// validator must find a jsr witness for it — a conversion here would be
// caught as a missing witness.
func TestIndirectJSRThroughGAT(t *testing.T) {
	const prog = `
long mul2(long v) { return v * 2; }
long mul3(long v) { return v * 3; }

long apply(fnptr f, long v) { return f(v); }

long main() {
	print(apply(mul2, 10) + apply(mul3, 10));
	return 0;
}
`
	obj, err := tcc.Compile("fp", []tcc.Source{{Name: "fp", Text: prog}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	objs := append([]*objfile.Object{obj}, lib...)
	for _, level := range []om.Level{om.LevelNone, om.LevelSimple, om.LevelFull} {
		r, err := RunCell(context.Background(), objs, Cell{Level: level}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Doc.Err(); err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if r.Doc.ByReason[om.ReasonCallKeptIndirect] == 0 {
			t.Errorf("%s: no indirect call survived (ByReason: %v)", level, r.Doc.ByReason)
		}
	}
}

// fillerObject hand-builds a module whose single procedure is nwords of
// no-ops: bulk that pushes a hot caller and a cold callee more than a bsr's
// ±4MB apart under profile-guided layout.
func fillerObject(t *testing.T, nwords int) *objfile.Object {
	t.Helper()
	o := objfile.New("filler")
	text := make([]byte, 4*nwords)
	unop := axp.MustEncode(axp.Unop())
	for i := 0; i < len(text); i += 4 {
		objfile.PutUint32(text, uint64(i), unop)
	}
	o.Sections[objfile.SecText].Data = text
	o.Sections[objfile.SecText].Size = uint64(len(text))
	o.AddSymbol(objfile.Symbol{
		Name: "filler", Kind: objfile.SymProc, Section: objfile.SecText,
		Value: 0, End: uint64(len(text)), Exported: true,
	})
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	return o
}

// TestLayoutFallbackVerified forces the layout:fallback-jsr-range path: a
// synthetic profile makes caller_far hot and the 4.4MB filler warm, sinking
// callee_far beyond bsr reach, so the already-converted call must revert to
// its GAT-indirect jsr — and the reverted image must still verify and run.
func TestLayoutFallbackVerified(t *testing.T) {
	callerSrc := `
long callee_far(long v);

long caller_far(long v) { return callee_far(v) + 1; }
`
	mainSrc := `
long caller_far(long v);

long callee_far(long v) { return v * 3; }

long main() {
	print(caller_far(13));
	return 0;
}
`
	caller, err := tcc.Compile("a", []tcc.Source{{Name: "a", Text: callerSrc}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	main, err := tcc.Compile("c", []tcc.Source{{Name: "c", Text: mainSrc}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	objs := append([]*objfile.Object{caller, fillerObject(t, 1_100_000), main}, lib...)

	prof := &profile.Profile{
		SchemaV: profile.Schema,
		Source:  "synthetic",
		Procs: []profile.ProcCount{
			{Name: "caller_far", Entries: 10, Weight: 1000},
			{Name: "filler", Entries: 5, Weight: 500},
		},
	}
	r, err := RunCell(context.Background(), objs, Cell{Level: om.LevelFull, Profile: true}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if r.Journal.Counts[om.ReasonLayoutFallback] == 0 {
		t.Fatalf("layout produced no fallback events (counts: %v)", r.Journal.Counts)
	}
	if r.Doc.ByReason[om.ReasonCallKeptLayout] == 0 {
		t.Errorf("no call was kept for layout range (ByReason: %v)", r.Doc.ByReason)
	}
	if err := r.Doc.Err(); err != nil {
		t.Fatalf("fallback image fails verification: %v", err)
	}

	// The reverted call must still be sound: the optimized image computes the
	// same result as the plain link.
	baseIm, err := link.Link(objs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := execute(baseIm, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := execute(r.Image, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rep := &DiffReport{}
	compare(rep, 0, "layout-fallback", base, opt)
	if len(rep.Mismatches) != 0 {
		t.Fatalf("fallback image diverges: %+v", rep.Mismatches)
	}
}
