package verify

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/om"
	"repro/internal/rtlib"
	"repro/internal/tcc"
)

// fixture is a small program exercising every site category: cross-module
// calls, an indirect call through a function pointer, global and small
// data, doubles, and enough call depth for layout to matter.
const fixture = `
long table[40];
long sum = 0;
double ratio = 1.5;
long pad[6];

long down(long a, long b) { return b - a; }

static long twist(long v) { return v * 5 + 1; }

long fill(long n) {
	long i;
	for (i = 0; i < n; i = i + 1) {
		table[i] = lhash(i + 3) % 89 + twist(i);
		sum = sum + table[i];
	}
	return sum;
}

long main() {
	fill(40);
	qsort8(table, 0, 39, down);
	print(issorted(table, 40, down));
	print(sum);
	print_fixed(ratio * 4.0);
	pad[2] = sum % 500;
	print(pad[2] + table[0]);
	return 0;
}
`

// fixtureObjects compiles the fixture plus the runtime library.
func fixtureObjects(t *testing.T) []*objfile.Object {
	t.Helper()
	obj, err := tcc.Compile("prog", []tcc.Source{{Name: "prog", Text: fixture}}, tcc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.StandardObjects()
	if err != nil {
		t.Fatal(err)
	}
	return append([]*objfile.Object{obj}, lib...)
}

// TestMatrixClean is the subsystem's core property: every cell of the
// golden level × sched × ablation × profile matrix must translation-
// validate with zero verdict failures.
func TestMatrixClean(t *testing.T) {
	objs := fixtureObjects(t)
	entries := RunMatrix(context.Background(), "fixture", objs, MatrixCells())
	if len(entries) != len(MatrixCells()) {
		t.Fatalf("got %d entries, want %d", len(entries), len(MatrixCells()))
	}
	for _, e := range entries {
		if e.Err != "" {
			t.Errorf("%s: %s", e.Cell, e.Err)
			continue
		}
		if e.Failed != 0 {
			t.Errorf("%s: %d/%d verdicts failed", e.Cell, e.Failed, e.Checked)
		}
		if e.Checked == 0 {
			t.Errorf("%s: validated nothing", e.Cell)
		}
	}
}

// TestVerdictCoverage pins the reason codes a full traced run must cover
// and the journal/verdict cross-check.
func TestVerdictCoverage(t *testing.T) {
	objs := fixtureObjects(t)
	r, err := RunCell(context.Background(), objs, Cell{Level: om.LevelFull}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Doc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.Doc.Check(); err != nil {
		t.Fatal(err)
	}
	if err := r.Doc.CrossCheck(r.Journal); err != nil {
		t.Fatal(err)
	}
	for _, reason := range []string{
		om.ReasonAddrConvertedLDA,
		om.ReasonAddrNullifiedPV,
		om.ReasonCallConvertedNoProl,
		om.ReasonCallKeptIndirect,
		om.ReasonResetRemoved,
	} {
		if r.Doc.ByReason[reason] == 0 {
			t.Errorf("full run covers no %s events (ByReason: %v)", reason, r.Doc.ByReason)
		}
	}
}

// TestDocRoundTrip: Write/Read preserve the document and Read rejects
// foreign schemas.
func TestDocRoundTrip(t *testing.T) {
	objs := fixtureObjects(t)
	r, err := RunCell(context.Background(), objs, Cell{Level: om.LevelSimple}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, r.Doc); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checked != r.Doc.Checked || got.Failed != r.Doc.Failed || len(got.Verdicts) != len(r.Doc.Verdicts) {
		t.Fatalf("round trip changed the document: %+v vs %+v", got, r.Doc)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader([]byte(`{"schema":"om-journal/v1"}`))); err == nil {
		t.Fatal("Read accepted a journal document as a verdict document")
	}
}

// TestCrossCheckDetectsDivergence: a verdict document must not silently
// pass against a journal with a different event population.
func TestCrossCheckDetectsDivergence(t *testing.T) {
	objs := fixtureObjects(t)
	r, err := RunCell(context.Background(), objs, Cell{Level: om.LevelFull}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j := *r.Journal
	j.Counts = map[string]uint64{}
	for k, v := range r.Journal.Counts {
		j.Counts[k] = v
	}
	j.Counts[om.ReasonAddrConvertedLDA]++
	if err := r.Doc.CrossCheck(&j); err == nil {
		t.Fatal("CrossCheck accepted a journal with an extra event")
	}
}

// TestStructureChecksImage: structural verification passes on a good image
// and fails on a corrupted one.
func TestStructureChecksImage(t *testing.T) {
	objs := fixtureObjects(t)
	im, err := link.Link(objs)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ValidateImage(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Err(); err != nil {
		t.Fatalf("clean image fails structural checks: %v", err)
	}

	// Corrupt a GAT slot: it now points outside the image.
	if len(im.GATs) == 0 {
		t.Fatal("image has no GAT")
	}
	seg := im.DataSegment()
	g := im.GATs[0]
	objfile.PutUint64(seg.Data, g.Start-seg.Addr, 0xdead_beef_0000)
	doc, err = ValidateImage(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Failed == 0 {
		t.Fatal("corrupted GAT slot passed structural checks")
	}
}

// TestBrokenPassCaught is the acceptance criterion's fault injection: a
// deliberately-broken OM pass (a kept address load silently deleted after
// the passes) must be caught by the translation validator AND by the
// differential runner.
func TestBrokenPassCaught(t *testing.T) {
	restore := om.SetFaultHookForTesting(func(pg *om.Prog) {
		for _, pr := range pg.Procs {
			for _, si := range pr.Insts {
				if si.Lit != nil && !si.Lit.Converted && !si.Lit.Nullified && !si.Deleted {
					si.Deleted = true
					return
				}
			}
		}
	})
	defer restore()

	objs := fixtureObjects(t)

	// Pillar (a): the translation validator sees a kept load with no
	// surviving GAT-load witness.
	r, err := RunCell(context.Background(), objs, Cell{Level: om.LevelFull}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Doc.Failed == 0 {
		t.Fatal("translation validator missed the injected fault")
	}

	// Pillar (b): the differential runner sees the behavior change. The
	// deleted load leaves a stale register behind, so the optimized run
	// crashes or diverges from the baseline.
	baseIm, err := link.Link(objs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := execute(baseIm, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rep := &DiffReport{}
	opt, err := execute(r.Image, 100_000_000)
	if err == nil {
		compare(rep, 0, "om-full", base, opt)
	}
	if err == nil && len(rep.Mismatches) == 0 {
		t.Fatal("differential runner missed the injected fault")
	}
}

// TestDifferentialProperty runs a handful of generated programs through
// the quick matrix; behavior and verdicts must both hold.
func TestDifferentialProperty(t *testing.T) {
	cases := 4
	if testing.Short() {
		cases = 1
	}
	rep, err := Differential(context.Background(), DiffOptions{Cases: cases, Seed: 7000})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 || rep.Runs < cases*2 {
		t.Fatalf("differential run too shallow: %+v", rep)
	}
}

// TestTranslateRejectsForeignJournal: malformed journals are input errors,
// not verdicts.
func TestTranslateRejectsForeignJournal(t *testing.T) {
	objs := fixtureObjects(t)
	im, err := link.Link(objs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunCell(context.Background(), objs, Cell{Level: om.LevelFull}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j := *r.Journal
	j.Schema = "om-journal/v0"
	if _, err := Translate(im, &j); err == nil {
		t.Fatal("Translate accepted a journal with a bad schema")
	}
}

// TestCellNames pins the matrix cell naming downstream reports rely on.
func TestCellNames(t *testing.T) {
	got := fmt.Sprint(
		Cell{Level: om.LevelNone}.Name(), " ",
		Cell{Level: om.LevelFull, Schedule: true}.Name(), " ",
		Cell{Level: om.LevelFull, Schedule: true, Ablation: om.Ablation{NoGATReduction: true}}.Name(), " ",
		Cell{Level: om.LevelFull, Profile: true}.Name(),
	)
	want := "om-none om-full+sched om-full-gat-reduction+sched om-full+pgo"
	if got != want {
		t.Fatalf("cell names changed:\n got %s\nwant %s", got, want)
	}
}
