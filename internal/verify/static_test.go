package verify

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
)

// TestCrossCheckStatic exercises the static column of the cross-check
// against hand-built reports; the end-to-end wiring over real images is
// covered by the harness lint tests.
func TestCrossCheckStatic(t *testing.T) {
	doc := &Doc{Schema: Schema}
	clean := &dataflow.Report{Schema: dataflow.Schema, Source: "image", Checked: 42}
	if err := doc.CrossCheckStatic(clean); err != nil {
		t.Fatalf("clean pair rejected: %v", err)
	}

	cases := []struct {
		name string
		rep  *dataflow.Report
		want string
	}{
		{"nil", nil, "no static report"},
		{"schema", &dataflow.Report{Schema: "bogus/v9", Source: "image", Checked: 1}, "schema"},
		{"source", &dataflow.Report{Schema: dataflow.Schema, Source: "prog", Checked: 1}, "want an image"},
		{"empty", &dataflow.Report{Schema: dataflow.Schema, Source: "image"}, "no check sites"},
		{"error", &dataflow.Report{Schema: dataflow.Schema, Source: "image", Checked: 9,
			Findings: []dataflow.Finding{{ID: "DF008", Check: "dangling-link",
				Severity: dataflow.SevError, Proc: "main", Detail: "broken"}}},
			"static analysis reports 1 error"},
	}
	for _, tc := range cases {
		err := doc.CrossCheckStatic(tc.rep)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Info findings are optimality reports, not soundness disagreements.
	missed := &dataflow.Report{Schema: dataflow.Schema, Source: "image", Checked: 7,
		Findings: []dataflow.Finding{{ID: "DF002", Check: "dead-literal-load",
			Severity: dataflow.SevInfo, Proc: "main"}}}
	if err := doc.CrossCheckStatic(missed); err != nil {
		t.Fatalf("info finding treated as disagreement: %v", err)
	}

	// A run the dynamic validator already failed carries no claim for the
	// static column to contradict.
	failed := &Doc{Schema: Schema}
	failed.add(Verdict{Cat: "addr", Rule: "lda-witness", Count: 3, OK: false, Err: "bad"})
	broken := &dataflow.Report{Schema: dataflow.Schema, Source: "image", Checked: 3,
		Findings: []dataflow.Finding{{ID: "DF001", Check: "gp-clobbered-before-use",
			Severity: dataflow.SevError, Proc: "main"}}}
	if err := failed.CrossCheckStatic(broken); err != nil {
		t.Fatalf("already-failed doc rejected: %v", err)
	}
}
