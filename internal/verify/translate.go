package verify

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/axp"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/om"
)

// This file implements translation validation: replaying OM's decision
// journal against the final linked image and proving each rewrite locally
// sound. The validator is deliberately independent of OM's internals — it
// sees only what the journal claims and what the image contains — so a bug
// in a pass cannot also hide the evidence.
//
// The core technique is witness counting. Journal events are grouped by
// (cat, proc, target, reason); each group demands a number of witnesses in
// the named procedure's final code (lda-from-GP materializing the target
// address, bsr landing on the callee entry, a surviving GAT load whose slot
// holds the target, ...), and the group fails if the code cannot supply
// them. Demands that several reasons share (bsr targets, jsr counts, GAT
// loads) are aggregated before comparison so conversions and keeps cannot
// borrow each other's witnesses.

// procWitness holds the decoded code and witness tallies of one procedure
// symbol.
type procWitness struct {
	sym objfile.ImageSymbol
	// lda counts addresses materialized by `lda r, d(gp)` with r not GP
	// (GP-writing ldas are prologue/reset lows, not address rewrites).
	lda map[uint64]uint64
	// ldahHi counts the hi displacements of `ldah r, hi(gp)` with r not GP.
	ldahHi map[int32]uint64
	// gatLoad counts the slot values of surviving GAT loads: `ldq r, d(gp)`
	// whose effective address falls inside the procedure's GAT.
	gatLoad map[uint64]uint64
	// bsr counts targets of RA-linked bsr instructions (converted and
	// compiler-direct calls).
	bsr map[uint64]uint64
	// jsr counts surviving jsr instructions (kept GAT-indirect and
	// indirect calls).
	jsr uint64
}

// imageIndex is the decoded, witness-tallied view of a linked image.
type imageIndex struct {
	im    *objfile.Image
	procs map[string][]*procWitness
	syms  map[string][]objfile.ImageSymbol
	gats  map[uint64]objfile.GATRange // keyed by GP value
}

func newIndex(im *objfile.Image) (*imageIndex, error) {
	idx := &imageIndex{
		im:    im,
		procs: make(map[string][]*procWitness),
		syms:  make(map[string][]objfile.ImageSymbol),
		gats:  make(map[uint64]objfile.GATRange),
	}
	for _, g := range im.GATs {
		idx.gats[g.GP] = g
	}
	for _, s := range im.Symbols {
		idx.syms[s.Name] = append(idx.syms[s.Name], s)
		if s.Kind != objfile.SymProc {
			continue
		}
		pw, err := idx.witness(s)
		if err != nil {
			return nil, err
		}
		idx.procs[s.Name] = append(idx.procs[s.Name], pw)
	}
	return idx, nil
}

// textSlice returns the code bytes of [addr, addr+size) if they lie inside
// one text segment.
func (idx *imageIndex) textSlice(addr, size uint64) ([]byte, bool) {
	for _, seg := range idx.im.TextSegments() {
		if addr >= seg.Addr && addr+size <= seg.Addr+uint64(len(seg.Data)) {
			off := addr - seg.Addr
			return seg.Data[off : off+size], true
		}
	}
	return nil, false
}

// quadAt reads the little-endian quadword at an absolute address, if it is
// backed by initialized segment data.
func (idx *imageIndex) quadAt(addr uint64) (uint64, bool) {
	for i := range idx.im.Segments {
		seg := &idx.im.Segments[i]
		if addr >= seg.Addr && addr+8 <= seg.Addr+uint64(len(seg.Data)) {
			return objfile.Uint64At(seg.Data, addr-seg.Addr), true
		}
	}
	return 0, false
}

func (idx *imageIndex) witness(sym objfile.ImageSymbol) (*procWitness, error) {
	code, ok := idx.textSlice(sym.Addr, sym.Size)
	if !ok {
		return nil, fmt.Errorf("verify: procedure %s [%#x,+%#x) outside text", sym.Name, sym.Addr, sym.Size)
	}
	insts, err := axp.DecodeAll(code)
	if err != nil {
		return nil, fmt.Errorf("verify: procedure %s does not decode: %w", sym.Name, err)
	}
	pw := &procWitness{
		sym:     sym,
		lda:     make(map[uint64]uint64),
		ldahHi:  make(map[int32]uint64),
		gatLoad: make(map[uint64]uint64),
		bsr:     make(map[uint64]uint64),
	}
	gat, hasGAT := idx.gats[sym.GP]
	for i, in := range insts {
		pc := sym.Addr + uint64(4*i)
		switch {
		case in.Op == axp.LDA && in.Rb == axp.GP && in.Ra != axp.GP && in.Ra != axp.Zero:
			pw.lda[uint64(int64(sym.GP)+int64(in.Disp))]++
		case in.Op == axp.LDAH && in.Rb == axp.GP && in.Ra != axp.GP:
			pw.ldahHi[in.Disp]++
		case in.Op == axp.LDQ && in.Rb == axp.GP:
			slot := uint64(int64(sym.GP) + int64(in.Disp))
			if hasGAT && slot >= gat.Start && slot+8 <= gat.End {
				if v, ok := idx.quadAt(slot); ok {
					pw.gatLoad[v]++
				}
			}
		case in.Op == axp.BSR && in.Ra == axp.RA:
			pw.bsr[axp.BranchTarget(in, pc)]++
		case in.Op == axp.JSR:
			pw.jsr++
		}
	}
	return pw, nil
}

// parseTarget splits a journal target of the form "name" or "name±addend"
// (keyName's rendering) into its symbol name and addend.
func parseTarget(t string) (string, int64) {
	if i := strings.LastIndexAny(t, "+-"); i > 0 {
		if v, err := strconv.ParseInt(t[i:], 10, 64); err == nil {
			return t[:i], v
		}
	}
	return t, 0
}

// targetAddrs resolves a journal target to its candidate image addresses
// (several when the name is multiply defined across modules).
func (idx *imageIndex) targetAddrs(t string) []uint64 {
	base, addend := parseTarget(t)
	var out []uint64
	for _, s := range idx.syms[base] {
		out = append(out, uint64(int64(s.Addr)+addend))
	}
	return out
}

// targetProcs resolves a journal target to candidate procedure symbols.
func (idx *imageIndex) targetProcs(t string) []*procWitness {
	base, _ := parseTarget(t)
	return idx.procs[base]
}

// parseGPDetail parses the "gp+0x..." GP-delta detail of kept address
// events.
func parseGPDetail(detail string) (int64, bool) {
	if !strings.HasPrefix(detail, "gp") {
		return 0, false
	}
	v, err := strconv.ParseInt(detail[2:], 0, 64)
	return v, err == nil
}

// region maps an address to its dynamic-link region: 0 for the static
// program, 1 for shared-library text and data.
func region(addr uint64) int {
	if addr >= objfile.SharedTextBase {
		return 1
	}
	return 0
}

// group is a batch of journal events sharing (cat, proc, target, reason).
type group struct {
	cat, proc, target, reason string
	detail                    string
	count                     uint64
}

type bsrKey struct {
	proc   string
	callee string
	off    uint64
}

// offDirect keys the compiler-direct witness pool, whose landing pads are
// both entry and entry+8.
const offDirect = 99

type gatKey struct {
	proc   string
	target string
}

// Translate validates every event of a decision journal against the final
// image, returning one verdict per event group. It errors only on malformed
// inputs; verification failures are reported in the document.
func Translate(im *objfile.Image, j *obs.JournalDoc) (*Doc, error) {
	if err := j.Check(); err != nil {
		return nil, err
	}
	idx, err := newIndex(im)
	if err != nil {
		return nil, err
	}

	// Group events, preserving first-seen order for stable output.
	var order []group
	pos := make(map[group]int)
	for _, e := range j.Events {
		k := group{cat: e.Cat, proc: e.Proc, target: e.Target, reason: e.Reason}
		i, ok := pos[k]
		if !ok {
			i = len(order)
			pos[k] = i
			k.detail = e.Detail
			order = append(order, k)
		}
		order[i].count++
	}

	// Phase 1: aggregate the shared demands so groups cannot borrow each
	// other's witnesses.
	needBSR := make(map[bsrKey]uint64)
	needGAT := make(map[gatKey]uint64)
	needJSR := make(map[string]uint64)
	for _, g := range order {
		switch g.reason {
		case om.ReasonCallDirect:
			// Compiler-direct calls to a same-GP procedure may skip the
			// callee's GP prologue, so their landing pad is entry or
			// entry+8; they get their own witness pool.
			needBSR[bsrKey{g.proc, g.target, offDirect}] += g.count
		case om.ReasonCallConverted, om.ReasonCallConvertedNoProl:
			needBSR[bsrKey{g.proc, g.target, 0}] += g.count
		case om.ReasonCallConvertedSkip:
			needBSR[bsrKey{g.proc, g.target, 8}] += g.count
		default:
			switch g.cat {
			case "call":
				if strings.Contains(g.reason, ":kept:") {
					needJSR[g.proc] += g.count
				}
			case "addr":
				if strings.Contains(g.reason, ":kept:") && g.reason != om.ReasonAddrKeptNoAddr {
					needGAT[gatKey{g.proc, g.target}] += g.count
				}
			}
		}
	}

	// Phase 2: per-group verdicts.
	d := &Doc{Schema: Schema, Level: j.Level}
	for _, g := range order {
		d.add(checkGroup(idx, g, needBSR, needGAT, needJSR))
	}
	return d, nil
}

// availability helpers: witnesses are summed across all same-named
// procedure candidates, so multiply-defined names stay checkable (their
// events are grouped under one name, too).

func (idx *imageIndex) availLDA(proc string, addrs []uint64) uint64 {
	var n uint64
	for _, pw := range idx.procs[proc] {
		for _, a := range addrs {
			n += pw.lda[a]
		}
	}
	return n
}

func (idx *imageIndex) availLDAH(proc string, addrs []uint64) uint64 {
	var n uint64
	for _, pw := range idx.procs[proc] {
		for _, a := range addrs {
			if hi, _, err := link.SplitGPDisp(int64(a) - int64(pw.sym.GP)); err == nil {
				n += pw.ldahHi[int32(hi)]
			}
		}
	}
	return n
}

func (idx *imageIndex) availGAT(proc string, addrs []uint64) uint64 {
	var n uint64
	for _, pw := range idx.procs[proc] {
		for _, a := range addrs {
			n += pw.gatLoad[a]
		}
	}
	return n
}

func (idx *imageIndex) availBSR(proc string, entries []uint64) uint64 {
	var n uint64
	for _, pw := range idx.procs[proc] {
		for _, a := range entries {
			n += pw.bsr[a]
		}
	}
	return n
}

func (idx *imageIndex) availJSR(proc string) uint64 {
	var n uint64
	for _, pw := range idx.procs[proc] {
		n += pw.jsr
	}
	return n
}

// fitsAny reports whether target-GP fits the given reach predicate for at
// least one (procedure candidate, target candidate) pair.
func (idx *imageIndex) fitsAny(proc string, addrs []uint64, fits func(delta int64) bool) bool {
	for _, pw := range idx.procs[proc] {
		for _, a := range addrs {
			if fits(int64(a) - int64(pw.sym.GP)) {
				return true
			}
		}
	}
	return false
}

func fits16(v int64) bool { return v >= axp.MemDispMin && v <= axp.MemDispMax }

func fits32(v int64) bool { _, _, err := link.SplitGPDisp(v); return err == nil }

func checkGroup(idx *imageIndex, g group, needBSR map[bsrKey]uint64, needGAT map[gatKey]uint64, needJSR map[string]uint64) Verdict {
	v := Verdict{Cat: g.cat, Proc: g.proc, Target: g.target, Reason: g.reason, Count: g.count}
	fail := func(rule, format string, args ...any) Verdict {
		v.Rule, v.OK, v.Err = rule, false, fmt.Sprintf(format, args...)
		return v
	}
	pass := func(rule string) Verdict {
		v.Rule, v.OK = rule, true
		return v
	}

	if g.cat != "image" && len(idx.procs[g.proc]) == 0 {
		return fail("proc-exists", "procedure %s not in image symbol table", g.proc)
	}
	addrs := idx.targetAddrs(g.target)

	switch g.reason {
	// Address loads.
	case om.ReasonAddrConvertedLDA:
		if len(addrs) == 0 {
			return fail("lda-witness", "target %s not in image symbol table", g.target)
		}
		if !idx.fitsAny(g.proc, addrs, fits16) {
			return fail("lda-witness", "target %s outside 16-bit GP reach", g.target)
		}
		if got := idx.availLDA(g.proc, addrs); got < g.count {
			return fail("lda-witness", "%d conversions claimed, %d lda-from-GP witnesses", g.count, got)
		}
		return pass("lda-witness")

	case om.ReasonAddrConvertedLDAH:
		if len(addrs) == 0 {
			return fail("ldah-witness", "target %s not in image symbol table", g.target)
		}
		if !idx.fitsAny(g.proc, addrs, fits32) {
			return fail("ldah-witness", "target %s outside 32-bit GP reach", g.target)
		}
		if got := idx.availLDAH(g.proc, addrs); got < g.count {
			return fail("ldah-witness", "%d conversions claimed, %d ldah-from-GP witnesses", g.count, got)
		}
		return pass("ldah-witness")

	case om.ReasonAddrNullified:
		// The load is gone; its uses were rewritten GP-relative, which is
		// sound only if the datum is within direct GP reach.
		if len(addrs) == 0 {
			return fail("gp-reach", "target %s not in image symbol table", g.target)
		}
		if !idx.fitsAny(g.proc, addrs, fits16) {
			return fail("gp-reach", "nullified load of %s outside 16-bit GP reach", g.target)
		}
		return pass("gp-reach")

	case om.ReasonAddrNullifiedPV:
		// The PV load died because its call was converted; the callee must
		// be a real procedure (the bsr itself is checked by the call event).
		if len(idx.targetProcs(g.target)) == 0 {
			return fail("pv-dead-callee", "callee %s not a procedure in image", g.target)
		}
		return pass("pv-dead-callee")

	case om.ReasonAddrKeptNoAddr:
		return pass("accounted")

	case om.ReasonAddrKeptNoOpt, om.ReasonAddrKeptDisabled, om.ReasonAddrKeptText,
		om.ReasonAddrKeptCrossReg, om.ReasonAddrKeptOutOfRange,
		om.ReasonAddrKeptMixedUse, om.ReasonAddrKeptDispOvfl, om.ReasonAddrKeptOther:
		if len(addrs) == 0 {
			return fail("gat-slot-witness", "target %s not in image symbol table", g.target)
		}
		// Reason-specific side conditions first.
		switch g.reason {
		case om.ReasonAddrKeptText:
			if len(idx.targetProcs(g.target)) == 0 {
				return fail("gat-slot-witness", "kept text-address %s not a procedure", g.target)
			}
		case om.ReasonAddrKeptCrossReg:
			ok := false
			for _, pw := range idx.procs[g.proc] {
				for _, a := range addrs {
					if region(a) != region(pw.sym.Addr) {
						ok = true
					}
				}
			}
			if !ok {
				return fail("cross-region", "kept cross-region load of %s, but target shares the procedure's region", g.target)
			}
		case om.ReasonAddrKeptOutOfRange:
			if idx.fitsAny(g.proc, addrs, fits32) && !idx.fitsAny(g.proc, addrs, func(d int64) bool { return !fits32(d) }) {
				return fail("gp-out-of-range", "kept out-of-range load of %s, but target is within 32-bit GP reach", g.target)
			}
		}
		// The GP-delta detail must agree with the resolved address. Text
		// addresses are exempt: the journal records the plan's estimate,
		// and scheduling legitimately shifts procedure starts afterwards.
		if delta, ok := parseGPDetail(g.detail); ok && len(idx.targetProcs(g.target)) == 0 {
			if !idx.fitsAny(g.proc, addrs, func(d int64) bool { return d == delta }) {
				return fail("gp-delta-detail", "journal says gp%+#x, no candidate address matches", delta)
			}
		}
		// A kept load must still exist: a surviving ldq-from-GP whose GAT
		// slot holds the target address, with the demand aggregated across
		// every kept reason naming this (proc, target).
		need := needGAT[gatKey{g.proc, g.target}]
		if got := idx.availGAT(g.proc, addrs); got < need {
			return fail("gat-slot-witness", "%d kept loads of %s claimed, %d surviving GAT-load witnesses", need, g.target, got)
		}
		return pass("gat-slot-witness")

	// Call sites.
	case om.ReasonCallDirect, om.ReasonCallConverted, om.ReasonCallConvertedNoProl, om.ReasonCallConvertedSkip:
		procs := idx.targetProcs(g.target)
		if len(procs) == 0 {
			return fail("bsr-target", "callee %s not a procedure in image", g.target)
		}
		off := uint64(0)
		if g.reason == om.ReasonCallConvertedSkip {
			off = 8
		}
		var entries []uint64
		for _, pw := range procs {
			entries = append(entries, pw.sym.Addr+off)
		}
		key := bsrKey{g.proc, g.target, off}
		if g.reason == om.ReasonCallDirect {
			key.off = offDirect
			for _, pw := range procs {
				entries = append(entries, pw.sym.Addr+8)
			}
		}
		need := needBSR[key]
		if got := idx.availBSR(g.proc, entries); got < need {
			return fail("bsr-target", "%d direct calls to %s+%d claimed, %d bsr witnesses", need, g.target, off, got)
		}
		return pass("bsr-target")

	case om.ReasonCallKeptNoOpt, om.ReasonCallKeptDisabled, om.ReasonCallKeptIndirect,
		om.ReasonCallKeptUnknown, om.ReasonCallKeptCrossReg, om.ReasonCallKeptLayout,
		om.ReasonCallKeptOther:
		if g.reason == om.ReasonCallKeptCrossReg {
			ok := false
			for _, pw := range idx.procs[g.proc] {
				for _, cw := range idx.targetProcs(g.target) {
					if region(cw.sym.Addr) != region(pw.sym.Addr) {
						ok = true
					}
				}
			}
			if !ok {
				return fail("cross-region", "kept cross-region call to %s, but callee shares the caller's region", g.target)
			}
		}
		need := needJSR[g.proc]
		if got := idx.availJSR(g.proc); got < need {
			return fail("jsr-witness", "%d kept call sites in %s claimed, %d surviving jsr witnesses", need, g.proc, got)
		}
		return pass("jsr-witness")

	// GP-reset pairs.
	case om.ReasonResetRemoved:
		if g.target == "" {
			// An elided reset with no recorded callee is sound only under a
			// single program-wide GAT (every GP value is the same).
			if len(idx.im.GATs) > 1 {
				return fail("same-gat", "reset removed with unknown callee but image has %d GATs", len(idx.im.GATs))
			}
			return pass("same-gat")
		}
		for _, pw := range idx.procs[g.proc] {
			for _, cw := range idx.targetProcs(g.target) {
				if cw.sym.GP == pw.sym.GP {
					return pass("same-gat")
				}
			}
		}
		return fail("same-gat", "reset after call to %s removed, but callee GP differs from caller GP", g.target)

	case om.ReasonResetKeptDiffGAT:
		for _, pw := range idx.procs[g.proc] {
			for _, cw := range idx.targetProcs(g.target) {
				if cw.sym.GP != pw.sym.GP {
					return pass("diff-gat")
				}
			}
		}
		return fail("diff-gat", "reset kept for different-GAT callee %s, but callee GP equals caller GP", g.target)

	case om.ReasonResetKeptNoOpt, om.ReasonResetKeptDisabled, om.ReasonResetKeptUnknown, om.ReasonResetKeptOther:
		return pass("accounted")

	// Profile-guided layout.
	case om.ReasonLayoutFallback:
		if got := idx.availJSR(g.proc); got < 1 {
			return fail("jsr-witness", "layout fallback in %s claimed, but no surviving jsr", g.proc)
		}
		return pass("jsr-witness")

	case om.ReasonLayoutChain, om.ReasonLayoutHot, om.ReasonLayoutCold:
		return pass("proc-exists")
	}

	return fail("unknown-reason", "reason code %q not modeled by the validator", g.reason)
}
