package verify

import (
	"fmt"

	"repro/internal/axp"
	"repro/internal/objfile"
	"repro/internal/obs"
)

// Structure performs whole-image structural checks, independent of any
// journal: the image validates, every text segment decodes, every branch
// lands inside text, every RA-linked bsr lands on a procedure entry (or the
// entry+8 prologue skip), procedure GP values name real GATs, and GAT slots
// hold plausible addresses. One verdict per rule per segment keeps the
// output small on big images.
func Structure(im *objfile.Image) []Verdict {
	var out []Verdict
	check := func(proc, rule string, n uint64, err error) {
		v := Verdict{Cat: "image", Proc: proc, Rule: rule, Count: n, OK: err == nil}
		if err != nil {
			v.Err = err.Error()
		}
		out = append(out, v)
	}

	if err := im.Validate(); err != nil {
		check("", "image-valid", 1, err)
		return out
	}
	check("", "image-valid", 1, nil)

	// Entry lands on a procedure entry.
	if sym, ok := im.ProcAt(im.Entry); !ok || sym.Addr != im.Entry {
		check("", "entry-proc", 1, fmt.Errorf("entry %#x is not a procedure entry", im.Entry))
	} else {
		check("", "entry-proc", 1, nil)
	}

	// Procedure entries (and entry+8, the prologue-skip landing pad) are
	// the only legitimate bsr targets.
	procEntry := make(map[uint64]bool)
	gatGP := make(map[uint64]bool)
	for _, g := range im.GATs {
		gatGP[g.GP] = true
	}
	var badGP error
	var nprocs uint64
	for _, s := range im.Symbols {
		if s.Kind != objfile.SymProc {
			continue
		}
		nprocs++
		procEntry[s.Addr] = true
		procEntry[s.Addr+8] = true
		if badGP == nil && s.GP != 0 && len(im.GATs) > 0 && !gatGP[s.GP] {
			badGP = fmt.Errorf("procedure %s has GP %#x matching no GAT", s.Name, s.GP)
		}
	}
	check("", "proc-gp", nprocs, badGP)

	inText := func(addr uint64) bool {
		for _, seg := range im.TextSegments() {
			if addr >= seg.Addr && addr < seg.Addr+uint64(len(seg.Data)) {
				return true
			}
		}
		return false
	}

	for _, seg := range im.TextSegments() {
		insts, err := axp.DecodeAll(seg.Data)
		check(seg.Name, "text-decodes", uint64(len(seg.Data)/4), err)
		if err != nil {
			continue
		}
		var badBranch, badCall error
		var nbranch, ncall uint64
		for i, in := range insts {
			if !in.Op.IsBranch() {
				continue
			}
			pc := seg.Addr + uint64(4*i)
			target := axp.BranchTarget(in, pc)
			nbranch++
			if badBranch == nil && !inText(target) {
				badBranch = fmt.Errorf("%s at %#x targets %#x outside text", in.Op, pc, target)
			}
			if in.Op == axp.BSR && in.Ra == axp.RA {
				ncall++
				if badCall == nil && !procEntry[target] {
					badCall = fmt.Errorf("bsr at %#x targets %#x, not a procedure entry", pc, target)
				}
			}
		}
		check(seg.Name, "branch-in-text", nbranch, badBranch)
		check(seg.Name, "bsr-entry", ncall, badCall)
	}

	// GAT slots hold zero or addresses inside the image (text, data, or
	// bss extent).
	var lo, hi uint64
	for i := range im.Segments {
		if i == 0 || im.Segments[i].Addr < lo {
			lo = im.Segments[i].Addr
		}
		if im.Segments[i].End() > hi {
			hi = im.Segments[i].End()
		}
	}
	var badSlot error
	var nslots uint64
	for _, g := range im.GATs {
		for addr := g.Start; addr+8 <= g.End; addr += 8 {
			nslots++
			v, ok := quadAtImage(im, addr)
			if badSlot == nil && !ok {
				badSlot = fmt.Errorf("GAT slot %#x not backed by segment data", addr)
				continue
			}
			if badSlot == nil && v != 0 && (v < lo || v >= hi) {
				badSlot = fmt.Errorf("GAT slot %#x holds %#x, outside the image", addr, v)
			}
		}
	}
	check("", "gat-slots", nslots, badSlot)
	return out
}

func quadAtImage(im *objfile.Image, addr uint64) (uint64, bool) {
	for i := range im.Segments {
		seg := &im.Segments[i]
		if addr >= seg.Addr && addr+8 <= seg.Addr+uint64(len(seg.Data)) {
			return objfile.Uint64At(seg.Data, addr-seg.Addr), true
		}
	}
	return 0, false
}

// ValidateImage combines the structural checks with translation validation
// of a journal (which may be nil for structure-only verification) into one
// document.
func ValidateImage(im *objfile.Image, j *obs.JournalDoc) (*Doc, error) {
	d := &Doc{Schema: Schema}
	if j != nil {
		d.Level = j.Level
	}
	for _, v := range Structure(im) {
		d.add(v)
	}
	if j != nil {
		td, err := Translate(im, j)
		if err != nil {
			return nil, err
		}
		for _, v := range td.Verdicts {
			d.add(v)
		}
	}
	return d, nil
}
