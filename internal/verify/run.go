package verify

import (
	"context"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/link"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/om"
	"repro/internal/profile"
	"repro/internal/sim"
)

// Cell is one point of the verification matrix: an OM configuration whose
// output gets translation-validated (and differentially executed).
type Cell struct {
	Level    om.Level
	Schedule bool
	Ablation om.Ablation
	Profile  bool
}

// Name renders the cell for reports ("om-full-gat-reduction+sched+pgo").
func (c Cell) Name() string {
	n := c.Level.String()
	if c.Ablation != (om.Ablation{}) {
		n += c.Ablation.Name()
	}
	if c.Schedule {
		n += "+sched"
	}
	if c.Profile {
		n += "+pgo"
	}
	return n
}

// MatrixCells enumerates the golden verification matrix: every level with
// and without scheduling, every single-component ablation of OM-full, and
// profile-guided layout at OM-full.
func MatrixCells() []Cell {
	var cells []Cell
	for _, l := range []om.Level{om.LevelNone, om.LevelSimple, om.LevelFull} {
		for _, sched := range []bool{false, true} {
			cells = append(cells, Cell{Level: l, Schedule: sched})
		}
	}
	for _, ab := range om.Ablations()[1:] {
		cells = append(cells, Cell{Level: om.LevelFull, Schedule: true, Ablation: ab})
	}
	for _, sched := range []bool{false, true} {
		cells = append(cells, Cell{Level: om.LevelFull, Schedule: sched, Profile: true})
	}
	return cells
}

// QuickCells is the differential runner's default matrix: the levels plus
// scheduled and profile-guided OM-full (no ablations — those share all
// rewrite machinery with the full cell).
func QuickCells() []Cell {
	return []Cell{
		{Level: om.LevelNone},
		{Level: om.LevelSimple},
		{Level: om.LevelFull},
		{Level: om.LevelFull, Schedule: true},
		{Level: om.LevelFull, Schedule: true, Profile: true},
	}
}

// CellResult is one verified OM run.
type CellResult struct {
	Cell    Cell
	Image   *objfile.Image
	Journal *obs.JournalDoc
	Doc     *Doc
	// Static is the whole-program dataflow analysis of the produced image —
	// the same invariants the journal validation witnesses dynamically,
	// proved over the decoded bytes without running anything.
	Static *dataflow.Report
}

// EngineProfile runs the image under the simulator's engine profiler and
// attributes block counts to procedure symbols.
func EngineProfile(im *objfile.Image, maxInst uint64) (*profile.Profile, error) {
	res, err := sim.Run(im, sim.Config{MaxInstructions: maxInst, Profile: true})
	if err != nil {
		return nil, err
	}
	blocks := make([]profile.PCBlock, len(res.BlockProfile))
	for i, b := range res.BlockProfile {
		blocks[i] = profile.PCBlock{PC: b.PC, Len: b.Len, Count: b.Count}
	}
	return profile.FromImage(im, blocks)
}

// RunCell merges the objects, runs OM at the cell's settings with tracing,
// and validates the decision journal against the produced image. A profile
// cell with a nil profile collects one by running the cell's unprofiled
// image under the engine profiler first. shared names modules to link
// dynamically.
func RunCell(ctx context.Context, objs []*objfile.Object, c Cell, prof *profile.Profile, shared ...string) (*CellResult, error) {
	merge := func() (*link.Program, error) {
		p, err := link.Merge(objs)
		if err != nil {
			return nil, err
		}
		if len(shared) > 0 {
			p.MarkShared(shared...)
		}
		return p, nil
	}
	opts := []om.Option{om.WithLevel(c.Level), om.WithSchedule(c.Schedule), om.WithTrace()}
	if c.Ablation != (om.Ablation{}) {
		opts = append(opts, om.WithAblation(c.Ablation))
	}
	if c.Profile {
		if prof == nil {
			p, err := merge()
			if err != nil {
				return nil, err
			}
			plain, err := om.Run(ctx, p, om.WithLevel(c.Level), om.WithSchedule(c.Schedule))
			if err != nil {
				return nil, fmt.Errorf("verify: %s profile pre-run: %w", c.Name(), err)
			}
			prof, err = EngineProfile(plain.Image, 100_000_000)
			if err != nil {
				return nil, fmt.Errorf("verify: %s profile collection: %w", c.Name(), err)
			}
		}
		opts = append(opts, om.WithProfile(prof))
	}
	p, err := merge()
	if err != nil {
		return nil, err
	}
	res, err := om.Run(ctx, p, opts...)
	if err != nil {
		return nil, fmt.Errorf("verify: %s: %w", c.Name(), err)
	}
	doc, err := ValidateImage(res.Image, res.Journal)
	if err != nil {
		return nil, fmt.Errorf("verify: %s: %w", c.Name(), err)
	}
	static, err := dataflow.AnalyzeImage(res.Image)
	if err != nil {
		return nil, fmt.Errorf("verify: %s: static analysis: %w", c.Name(), err)
	}
	return &CellResult{Cell: c, Image: res.Image, Journal: res.Journal, Doc: doc, Static: static}, nil
}

// MatrixEntry is one row of a matrix verification report. Checked/Failed
// count the dynamic journal validation; Static/StaticFailed count the
// whole-program dataflow analysis of the same image.
type MatrixEntry struct {
	Label        string `json:"label"`
	Cell         string `json:"cell"`
	Checked      uint64 `json:"checked"`
	Failed       uint64 `json:"failed"`
	Static       uint64 `json:"static"`
	StaticFailed uint64 `json:"staticFailed"`
	Err          string `json:"err,omitempty"`
}

// RunMatrix verifies one program (already compiled to objects) across the
// given cells, collecting the engine profile once and reusing it for every
// profile cell. It returns one entry per cell; entries with Failed > 0 or
// a non-empty Err are verification failures.
func RunMatrix(ctx context.Context, label string, objs []*objfile.Object, cells []Cell) []MatrixEntry {
	var prof *profile.Profile
	out := make([]MatrixEntry, 0, len(cells))
	for _, c := range cells {
		e := MatrixEntry{Label: label, Cell: c.Name()}
		if c.Profile && prof == nil {
			// Collect one profile from the scheduled OM-full image and share
			// it across the profile cells.
			r, err := RunCell(ctx, objs, Cell{Level: om.LevelFull, Schedule: true}, nil)
			if err == nil {
				prof, err = EngineProfile(r.Image, 100_000_000)
			}
			if err != nil {
				e.Err = err.Error()
				out = append(out, e)
				continue
			}
		}
		r, err := RunCell(ctx, objs, c, prof)
		if err != nil {
			e.Err = err.Error()
			out = append(out, e)
			continue
		}
		e.Checked, e.Failed = r.Doc.Checked, r.Doc.Failed
		e.Static = r.Static.Checked
		e.StaticFailed = uint64(r.Static.Errors())
		if err := r.Doc.Err(); err != nil {
			e.Err = err.Error()
		} else if n := r.Static.Errors(); n > 0 {
			for _, f := range r.Static.Findings {
				if f.Severity == dataflow.SevError {
					e.Err = fmt.Sprintf("static analysis: %d error finding(s): %s", n, f.String())
					break
				}
			}
		}
		out = append(out, e)
	}
	return out
}
