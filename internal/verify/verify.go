// Package verify is the toolchain's correctness engine: translation
// validation of OM's decision journal against the final image, differential
// execution of randomized programs across the option matrix, and structural
// checks on linked images. Its output is the machine-readable om-verify/v1
// verdict document, the counterpart to the om-journal/v1 decision journal.
package verify

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Schema identifies the verdict file format; bump on incompatible change so
// downstream tooling can reject files it does not understand.
const Schema = "om-verify/v1"

// Verdict is one verification result. Translation verdicts cover Count
// journal events sharing (cat, proc, target, reason); structural verdicts
// use cat "image" and carry no reason.
type Verdict struct {
	// Cat is the site category ("addr", "call", "gpreset", "layout") or
	// "image" for whole-image structural checks.
	Cat string `json:"cat"`
	// Proc is the enclosing procedure (or segment for structural checks).
	Proc string `json:"proc,omitempty"`
	// Target names the symbol the checked sites refer to, when known.
	Target string `json:"target,omitempty"`
	// Reason is the journal reason code the verdict covers (empty for
	// structural checks).
	Reason string `json:"reason,omitempty"`
	// Rule names the validator rule that produced the verdict (e.g.
	// "lda-witness", "bsr-target").
	Rule string `json:"rule"`
	// Count is the number of journal events (or checked items) the verdict
	// covers.
	Count uint64 `json:"count"`
	OK    bool   `json:"ok"`
	// Err explains a failed verdict.
	Err string `json:"err,omitempty"`
}

// Doc is the serialized verdict document for one verified OM run.
type Doc struct {
	Schema string `json:"schema"`
	// Level is the optimization level of the verified run ("om-full", ...).
	Level string `json:"level,omitempty"`
	// Checked is the total number of items covered (sum of verdict counts).
	Checked uint64 `json:"checked"`
	// Failed is the number of covered items whose verdict failed.
	Failed uint64 `json:"failed"`
	// ByReason tallies covered journal events per reason code; omtrace
	// -verify cross-checks it against the journal's reason_counts so the
	// two accounting systems cannot silently diverge.
	ByReason map[string]uint64 `json:"reason_counts"`
	Verdicts []Verdict         `json:"verdicts"`
}

// add appends a verdict and folds it into the document totals.
func (d *Doc) add(v Verdict) {
	d.Verdicts = append(d.Verdicts, v)
	d.Checked += v.Count
	if !v.OK {
		d.Failed += v.Count
	}
	if v.Reason != "" {
		if d.ByReason == nil {
			d.ByReason = make(map[string]uint64)
		}
		d.ByReason[v.Reason] += v.Count
	}
}

// Err returns an error summarizing the failed verdicts, or nil if every
// verdict passed.
func (d *Doc) Err() error {
	if d.Failed == 0 {
		return nil
	}
	for _, v := range d.Verdicts {
		if !v.OK {
			return fmt.Errorf("verify: %d/%d checks failed; first: %s %s %s [%s]: %s",
				d.Failed, d.Checked, v.Cat, v.Proc, v.Reason, v.Rule, v.Err)
		}
	}
	return fmt.Errorf("verify: %d/%d checks failed", d.Failed, d.Checked)
}

// Check verifies the document's internal accounting: totals match the
// verdict list and the per-reason tally matches the verdicts.
func (d *Doc) Check() error {
	if d.Schema != Schema {
		return fmt.Errorf("verify: schema %q, want %q", d.Schema, Schema)
	}
	var checked, failed uint64
	byReason := make(map[string]uint64)
	for _, v := range d.Verdicts {
		checked += v.Count
		if !v.OK {
			failed += v.Count
		}
		if v.Reason != "" {
			byReason[v.Reason] += v.Count
		}
	}
	if checked != d.Checked {
		return fmt.Errorf("verify: %d items in verdicts, checked says %d", checked, d.Checked)
	}
	if failed != d.Failed {
		return fmt.Errorf("verify: %d failed items in verdicts, failed says %d", failed, d.Failed)
	}
	if len(byReason) != len(d.ByReason) {
		return fmt.Errorf("verify: %d distinct reasons in verdicts, %d in reason_counts",
			len(byReason), len(d.ByReason))
	}
	for r, n := range byReason {
		if d.ByReason[r] != n {
			return fmt.Errorf("verify: reason %s: %d items, reason_counts says %d", r, n, d.ByReason[r])
		}
	}
	return nil
}

// CrossCheck proves the verdict document and a decision journal agree on
// the per-reason event population: every journal reason count must equal
// the verdicts' covered-event count for that reason, and vice versa. This
// is the omtrace -verify gate — if the validator silently dropped events,
// or the journal grew a reason the validator does not model, it fails.
func (d *Doc) CrossCheck(j *obs.JournalDoc) error {
	if err := d.Check(); err != nil {
		return err
	}
	for reason, n := range j.Counts {
		if got := d.ByReason[reason]; got != n {
			return fmt.Errorf("verify: reason %s: journal has %d events, verdicts cover %d", reason, n, got)
		}
	}
	for reason, n := range d.ByReason {
		if _, ok := j.Counts[reason]; !ok {
			return fmt.Errorf("verify: reason %s: verdicts cover %d events, journal has none", reason, n)
		}
	}
	return nil
}

// Write serializes the document as indented JSON (the same style as the
// decision journal).
func Write(w io.Writer, d *Doc) error {
	data, err := json.MarshalIndent(d, "", "\t")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Read parses a document written by Write.
func Read(r io.Reader) (*Doc, error) {
	var d Doc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("verify: schema %q, want %q", d.Schema, Schema)
	}
	return &d, nil
}
