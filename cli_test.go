package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the command-line tools once into a temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"tcc", "tld", "om", "axsim", "axdis", "omdump"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func runTool(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func TestCLIToolchain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	work := t.TempDir()

	src := filepath.Join(work, "prog.tc")
	if err := os.WriteFile(src, []byte(`
long fib(long n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
long main() {
	print(fib(12));
	return 0;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	obj := filepath.Join(work, "prog.o")
	if _, errOut, err := runTool(t, filepath.Join(bins, "tcc"), "-o", obj, src); err != nil {
		t.Fatalf("tcc: %v\n%s", err, errOut)
	}

	// Standard link + run.
	base := filepath.Join(work, "base.out")
	if _, errOut, err := runTool(t, filepath.Join(bins, "tld"), "-o", base, obj); err != nil {
		t.Fatalf("tld: %v\n%s", err, errOut)
	}
	stdout, _, err := runTool(t, filepath.Join(bins, "axsim"), base)
	if err != nil {
		t.Fatalf("axsim: %v", err)
	}
	if strings.TrimSpace(stdout) != "144" {
		t.Fatalf("baseline output %q, want 144", stdout)
	}

	// OM link at each level + run; -stats must print a summary.
	for _, level := range []string{"none", "simple", "full"} {
		out := filepath.Join(work, "om_"+level+".out")
		_, errOut, err := runTool(t, filepath.Join(bins, "om"),
			"-o", out, "-level", level, "-stats", obj)
		if err != nil {
			t.Fatalf("om -level %s: %v\n%s", level, err, errOut)
		}
		if !strings.Contains(errOut, "addr loads") {
			t.Errorf("om -stats printed nothing useful: %q", errOut)
		}
		stdout, _, err := runTool(t, filepath.Join(bins, "axsim"), "-timing", out)
		if err != nil {
			t.Fatalf("axsim om_%s: %v", level, err)
		}
		if !strings.Contains(stdout, "144") {
			t.Errorf("om_%s output %q, want 144", level, stdout)
		}
	}

	// Disassembler on the object and the image.
	stdout, _, err = runTool(t, filepath.Join(bins, "axdis"), "-proc", "main", obj)
	if err != nil {
		t.Fatalf("axdis: %v", err)
	}
	for _, want := range []string{"main:", "jsr", "ldah"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("axdis output missing %q", want)
		}
	}
	stdout, _, err = runTool(t, filepath.Join(bins, "axdis"), base)
	if err != nil {
		t.Fatalf("axdis image: %v", err)
	}
	if !strings.Contains(stdout, "fib:") {
		t.Error("image disassembly missing fib label")
	}

	// omdump shows the lifted annotations.
	stdout, _, err = runTool(t, filepath.Join(bins, "omdump"), "-proc", "fib", obj)
	if err != nil {
		t.Fatalf("omdump: %v", err)
	}
	for _, want := range []string{"fib:", "GPDISP prologue", "LITERAL"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("omdump output missing %q:\n%s", want, stdout)
		}
	}

	// Optimistic mode: -G compiles, links, and runs identically.
	gobj := filepath.Join(work, "prog_g.o")
	if _, errOut, err := runTool(t, filepath.Join(bins, "tcc"), "-G", "64", "-o", gobj, src); err != nil {
		t.Fatalf("tcc -G: %v\n%s", err, errOut)
	}
	gout := filepath.Join(work, "g.out")
	if _, errOut, err := runTool(t, filepath.Join(bins, "tld"), "-o", gout, gobj); err != nil {
		t.Fatalf("tld -G build: %v\n%s", err, errOut)
	}
	stdout, _, err = runTool(t, filepath.Join(bins, "axsim"), gout)
	if err != nil || strings.TrimSpace(stdout) != "144" {
		t.Fatalf("optimistic build output %q (%v), want 144", stdout, err)
	}

	// Shared-library flag: link with libmath shared and run.
	sout := filepath.Join(work, "shared.out")
	if _, errOut, err := runTool(t, filepath.Join(bins, "om"),
		"-o", sout, "-level", "full", "-shared", "libmath,libutil", obj); err != nil {
		t.Fatalf("om -shared: %v\n%s", err, errOut)
	}
	stdout, _, err = runTool(t, filepath.Join(bins, "axsim"), sout)
	if err != nil || strings.TrimSpace(stdout) != "144" {
		t.Fatalf("shared build output %q (%v), want 144", stdout, err)
	}

	// Error paths: missing file, garbage object.
	if _, _, err := runTool(t, filepath.Join(bins, "tcc"), "-o", "/dev/null", filepath.Join(work, "nosuch.tc")); err == nil {
		t.Error("tcc should fail on a missing file")
	}
	bad := filepath.Join(work, "bad.o")
	os.WriteFile(bad, []byte("not an object"), 0o644)
	if _, _, err := runTool(t, filepath.Join(bins, "tld"), "-o", "/dev/null", bad); err == nil {
		t.Error("tld should fail on a garbage object")
	}
}

// TestExamples runs every example program end to end.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build per example")
	}
	examples := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"standard", "om-simple", "om-full", "speedup"}},
		{"callopt", []string{"driver under standard link", "OM-full", "jsr"}},
		{"gatshrink", []string{"GAT:", "OM-full statistics", "baseline output"}},
		{"instrument", []string{"whole-program analysis", "dynamic profile", "eval"}},
		{"sharedlib", []string{"fully static", "dynamically linked", "GP resets remain"}},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex.dir, err, out)
			}
			for _, want := range ex.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q", ex.dir, want)
				}
			}
		})
	}
}
