// Package repro is a complete Go reproduction of Srivastava & Wall,
// "Link-Time Optimization of Address Calculation on a 64-bit Architecture"
// (PLDI 1994) — the OM link-time optimizer from DEC WRL, rebuilt end to end
// on a simulated Alpha AXP substrate.
//
// The root package holds only the cross-cutting benchmarks (bench_test.go:
// one testing.B per paper figure/table plus pipeline micro-benchmarks) and
// the command-line integration tests. The system itself lives under
// internal/:
//
//	axp      instruction set, encodings, assembler, disassembler, scheduler
//	objfile  relocatable object format and executable images
//	tcc      the Tiny C compiler (conservative GAT/GP code model)
//	rtlib    the precompiled runtime library
//	link     the standard linker
//	om       the paper's contribution: the link-time optimizer
//	sim      functional + 21064-style timing simulator
//	spec     the nineteen SPEC92-shaped benchmarks
//	progen   random-program generator for property tests
//	harness  the experiment matrix and figure generators
//
// See README.md for a guided tour, DESIGN.md for the architecture and
// substitutions, and EXPERIMENTS.md for measured-versus-paper results.
package repro
